package transport

import (
	"fmt"
	"sort"

	"tcn/internal/fabric"
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// CBR is a constant-bit-rate source: it emits MSS-sized Not-ECT segments
// at a fixed application rate with no congestion control. Figure 5a's
// "500 Mbps TCP flow" is application-limited well below its strict-
// priority share, so its congestion control never engages; CBR models
// exactly that regime. Delivered bytes are observable through the stack's
// OnDeliver hook via a pseudo-flow.
type CBR struct {
	stack  *Stack
	flow   *Flow
	rate   fabric.Rate
	seg    int64
	off    int64
	stop   bool
	emitFn func() // stored pacing callback; rescheduling allocates nothing
}

// StartCBR begins a paced stream of the given application rate from
// src to dst in service class. It returns a handle whose Stop method ends
// the stream.
func (s *Stack) StartCBR(src, dst int, class uint8, rate fabric.Rate) *CBR {
	if rate <= 0 {
		panic(fmt.Sprintf("transport: CBR rate %v must be positive", rate))
	}
	f := &Flow{
		ID:    s.NewFlowID(),
		Src:   src,
		Dst:   dst,
		Size:  1 << 62, // endless
		Class: class,
		Tag:   StaticTag(class),
		Start: s.eng.Now(),
	}
	c := &CBR{stack: s, flow: f, rate: rate, seg: int64(s.cfg.MSS)}
	c.emitFn = c.emit
	// Register a counting receiver: the stream is unreliable, so every
	// arriving byte counts as delivered and no ACKs flow back.
	s.setReceiver(f.ID, newCountingReceiver(s, f))
	c.emit()
	return c
}

// Flow returns the pseudo-flow carrying the stream.
func (c *CBR) Flow() *Flow { return c.flow }

// Stop ends the stream.
func (c *CBR) Stop() { c.stop = true }

func (c *CBR) emit() {
	if c.stop {
		return
	}
	p := c.stack.pool.Get()
	*p = pkt.Packet{
		Flow:   c.flow.ID,
		Src:    c.flow.Src,
		Dst:    c.flow.Dst,
		Kind:   pkt.Data,
		Seq:    c.off,
		Len:    int(c.seg),
		Size:   int(c.seg) + pkt.HeaderSize,
		ECN:    c.stack.ecnCodepoint(),
		DSCP:   c.flow.Class,
		SentAt: c.stack.eng.Now(),
	}
	c.off += c.seg
	c.stack.send(c.flow.Src, p)
	// Pace the next segment so the payload rate matches.
	gap := c.rate.Serialize(int(c.seg) + pkt.HeaderSize)
	c.stack.eng.After(gap, c.emitFn)
}

// Pinger measures per-class RTT the way the paper does for Figure 5b:
// small probe packets through a chosen service queue, echoed back by the
// destination host, with every round trip recorded.
type Pinger struct {
	stack    *Stack
	flow     *Flow
	interval sim.Time
	size     int
	stop     bool
	seq      int64
	sent     map[int64]sim.Time
	probeFn  func() // stored rescheduling callback

	// Samples holds measured round-trip times in send order.
	Samples []sim.Time
}

// StartPinger begins probing from src to dst through service class every
// interval. Probes are 64-byte frames like ICMP echo.
func (s *Stack) StartPinger(src, dst int, class uint8, interval sim.Time) *Pinger {
	f := &Flow{
		ID:    s.NewFlowID(),
		Src:   src,
		Dst:   dst,
		Class: class,
		Start: s.eng.Now(),
	}
	pg := &Pinger{
		stack:    s,
		flow:     f,
		interval: interval,
		size:     64,
		sent:     make(map[int64]sim.Time),
	}
	pg.probeFn = pg.probe
	s.setPinger(f.ID, pg)
	pg.probe()
	return pg
}

// Stop ends probing.
func (pg *Pinger) Stop() { pg.stop = true }

func (pg *Pinger) probe() {
	if pg.stop {
		return
	}
	now := pg.stack.eng.Now()
	pg.seq++
	pg.sent[pg.seq] = now
	p := pg.stack.pool.Get()
	*p = pkt.Packet{
		Flow:   pg.flow.ID,
		Src:    pg.flow.Src,
		Dst:    pg.flow.Dst,
		Kind:   pkt.Ping,
		Seq:    pg.seq,
		Size:   pg.size,
		DSCP:   pg.flow.Class,
		SentAt: now,
	}
	pg.stack.send(pg.flow.Src, p)
	pg.stack.eng.After(pg.interval, pg.probeFn)
}

func (pg *Pinger) onPong(p *pkt.Packet) {
	if t0, ok := pg.sent[p.Seq]; ok {
		delete(pg.sent, p.Seq)
		pg.Samples = append(pg.Samples, pg.stack.eng.Now()-t0) //tcnlint:hotpath one RTT sample per probe interval; probes are sparse by construction
	}
}

// Percentile returns the q-quantile (0..1) of the collected samples.
func (pg *Pinger) Percentile(q float64) sim.Time {
	if len(pg.Samples) == 0 {
		return 0
	}
	s := make([]sim.Time, len(pg.Samples))
	copy(s, pg.Samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	return s[i]
}

// Mean returns the average of the collected samples.
func (pg *Pinger) Mean() sim.Time {
	if len(pg.Samples) == 0 {
		return 0
	}
	var sum sim.Time
	for _, v := range pg.Samples {
		sum += v
	}
	return sum / sim.Time(len(pg.Samples))
}

// echoPing bounces a probe back to its source through the same class.
func (s *Stack) echoPing(p *pkt.Packet) {
	pong := s.pool.Get()
	*pong = pkt.Packet{
		Flow:   p.Flow,
		Src:    p.Dst,
		Dst:    p.Src,
		Kind:   pkt.Pong,
		Seq:    p.Seq,
		Size:   p.Size,
		DSCP:   p.DSCP,
		SentAt: s.eng.Now(),
	}
	s.send(p.Dst, pong)
}
