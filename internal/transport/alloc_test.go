package transport

import (
	"testing"

	"tcn/internal/fabric"
	"tcn/internal/invariant"
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// steadyStateStar builds a two-host star with one long DCTCP flow and runs
// it past slow start, so every later packet travels pool → network → pool.
func steadyStateStar(t testing.TB) (*sim.Engine, *Stack) {
	eng := sim.NewEngine()
	star := fabric.NewStar(eng, fabric.StarConfig{
		Hosts: 2,
		Rate:  10 * fabric.Gbps,
		Prop:  10 * sim.Microsecond,
		SwitchPort: func() fabric.PortConfig {
			return fabric.PortConfig{Queues: 1}
		},
	})
	s := NewStack(eng, Config{CC: DCTCP}, star.Hosts)
	s.Start(&Flow{ID: s.NewFlowID(), Src: 0, Dst: 1, Size: 1 << 40})
	eng.RunUntil(50 * sim.Millisecond)
	if s.Timeouts != 0 {
		t.Fatalf("warmup suffered %d timeouts; steady state not reached", s.Timeouts)
	}
	return eng, s
}

// TestSteadyStatePacketPathAllocFree pins the zero-alloc property of the
// whole packet path — transmit, NIC, switch, delivery, ACK, window update,
// RTO rearm — once the packet pool and event freelist are warm.
func TestSteadyStatePacketPathAllocFree(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant.Checkf boxes its arguments; allocation-freedom only holds in normal builds")
	}
	eng, s := steadyStateStar(t)
	before := s.pool.Allocs
	if n := testing.AllocsPerRun(50, func() {
		eng.RunUntil(eng.Now() + sim.Millisecond)
	}); n != 0 { //tcnlint:floatexact AllocsPerRun must be exactly zero
		t.Fatalf("steady-state run allocates %.1f per ms of sim time, want 0", n)
	}
	if s.pool.Allocs != before {
		t.Fatalf("pool grew by %d packets in steady state", s.pool.Allocs-before)
	}
	if s.pool.Reuses == 0 {
		t.Fatal("pool recorded no reuses; packets are not being recycled")
	}
}

// TestPoolRoundTrip checks that delivered packets actually return to the
// stack's pool and are reissued rather than accumulating.
func TestPoolRoundTrip(t *testing.T) {
	eng, s := steadyStateStar(t)
	eng.RunUntil(eng.Now() + 10*sim.Millisecond)
	// Fresh allocations are bounded by the peak number of simultaneously
	// live packets (at most the max window); after that every send is a
	// reuse, so reuses dominate on a long run.
	if s.pool.Reuses < 10*s.pool.Allocs {
		t.Fatalf("pool reuse ratio too low: %d allocs, %d reuses", s.pool.Allocs, s.pool.Reuses)
	}
}

// TestPoolGetPut exercises the pkt.Pool contract directly, including the
// nil-pool and nil-packet edge cases.
func TestPoolGetPut(t *testing.T) {
	var pl pkt.Pool
	a := pl.Get()
	if pl.Allocs != 1 || pl.Reuses != 0 {
		t.Fatalf("fresh Get: allocs=%d reuses=%d", pl.Allocs, pl.Reuses)
	}
	pl.Put(a)
	if pl.Live() != 1 {
		t.Fatalf("Live = %d after Put, want 1", pl.Live())
	}
	if b := pl.Get(); b != a {
		t.Fatal("Get did not return the pooled packet")
	}
	if pl.Reuses != 1 {
		t.Fatalf("Reuses = %d, want 1", pl.Reuses)
	}
	pl.Put(nil) // no-op
	if pl.Live() != 0 {
		t.Fatalf("Put(nil) changed Live to %d", pl.Live())
	}
	var nilPool *pkt.Pool
	if nilPool.Get() == nil {
		t.Fatal("nil pool Get returned nil")
	}
	nilPool.Put(&pkt.Packet{}) // no-op
	if nilPool.Live() != 0 {
		t.Fatal("nil pool Live != 0")
	}
}
