// Package transport implements the end-host protocols the paper's
// evaluation drives traffic with: DCTCP (per-ACK ECN echo, g-weighted
// alpha EWMA, fractional window cuts) and ECN* (plain ECN-enabled TCP that
// halves its window once per RTT on ECN-echo), both on top of a NewReno
// loss-recovery engine with minimum-RTO clamping, plus auxiliary sources —
// a constant-bit-rate stream (Figure 5a's 500 Mbps flow) and a ping agent
// (Figure 5b's RTT probes).
//
// A single Stack instance owns all flows of an experiment; hosts hand it
// every delivered packet and it dispatches to the per-flow sender or
// receiver state machines.
package transport

import (
	"fmt"

	"tcn/internal/fabric"
	"tcn/internal/obs/prof"
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// CC selects the congestion-control reaction to ECN marks.
type CC uint8

// Congestion control algorithms.
const (
	// DCTCP scales the window cut by the EWMA-estimated fraction of
	// marked bytes (Alizadeh et al., SIGCOMM 2010).
	DCTCP CC = iota
	// ECNStar is regular ECN-enabled TCP: one half-window cut per RTT
	// in the presence of ECN-echo (Wu et al., CoNEXT 2012).
	ECNStar
	// Reno disables ECN: marks are ignored and only loss reduces the
	// window.
	Reno
)

func (c CC) String() string {
	switch c {
	case DCTCP:
		return "DCTCP"
	case ECNStar:
		return "ECN*"
	default:
		return "Reno"
	}
}

// Config carries the transport parameters of an experiment.
type Config struct {
	// CC selects the congestion control algorithm.
	CC CC
	// MSS is the maximum segment payload in bytes.
	MSS int
	// InitWindow is the initial congestion window in segments (the
	// paper's simulations use 16).
	InitWindow int
	// MaxWindow caps the window in segments (receive-window stand-in);
	// 0 means a large default.
	MaxWindow int
	// RTOMin clamps the retransmission timeout (paper: 5 ms in
	// simulation, 10 ms on the testbed).
	RTOMin sim.Time
	// RTOInit is the timeout before any RTT sample exists.
	RTOInit sim.Time
	// DCTCPg is DCTCP's alpha gain (paper default 1/16).
	DCTCPg float64
	// AckDSCP, if non-nil, overrides the service class of pure ACKs
	// (e.g. to place them in the high-priority queue, as operators do
	// per §2.2); nil means ACKs inherit the flow's class.
	AckDSCP func(f *Flow) uint8
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MSS == 0 {
		c.MSS = pkt.MSS
	}
	if c.InitWindow == 0 {
		c.InitWindow = 16
	}
	if c.MaxWindow == 0 {
		c.MaxWindow = 4096
	}
	if c.RTOMin == 0 {
		c.RTOMin = 5 * sim.Millisecond
	}
	if c.RTOInit == 0 {
		c.RTOInit = c.RTOMin
	}
	if c.DCTCPg == 0 { //tcnlint:floatexact zero is the "unset" sentinel, never computed
		c.DCTCPg = 1.0 / 16
	}
	return c
}

// Tagger assigns the DSCP (service class / priority queue) of a data
// segment from its byte offset within the flow. Static service classes
// ignore the offset; PIAS-style taggers demote later bytes.
type Tagger func(offset int64) uint8

// StaticTag returns a Tagger that always yields class.
func StaticTag(class uint8) Tagger { return func(int64) uint8 { return class } } //tcnlint:hotpath one closure per flow at setup; the returned Tagger itself is allocation-free

// Flow describes one transfer.
type Flow struct {
	ID   pkt.FlowID
	Src  int   // sending host
	Dst  int   // receiving host
	Size int64 // bytes to deliver

	// Tag assigns per-segment DSCP; nil means class 0.
	Tag Tagger
	// Class is the flow's nominal service, used for per-service metrics
	// (the Tag function may place individual segments elsewhere).
	Class uint8

	// Start is when the application issued the transfer.
	Start sim.Time
	// Done is when the last byte arrived at the receiver (0 while in
	// flight).
	Done sim.Time
	// Timeouts counts RTO expirations experienced by the flow.
	Timeouts int
}

// FCT returns the flow completion time, valid once Done is set.
func (f *Flow) FCT() sim.Time { return f.Done - f.Start }

// Stack manages every flow of an experiment.
type Stack struct {
	eng   *sim.Engine
	cfg   Config
	hosts []*fabric.Host

	// senders/receivers/pingers are demux tables indexed directly by
	// FlowID: NewFlowID hands out sequential IDs and endpoints are never
	// unregistered, so dense slices replace map hashing on the per-packet
	// deliver path. Holes are nil (no endpoint for that ID).
	senders   []*Sender
	receivers []*receiver
	nextID    pkt.FlowID

	// OnDone, if set, is called when a flow completes.
	OnDone func(f *Flow)
	// OnMessage, if set, is called when a persistent-connection message
	// completes.
	OnMessage func(m *Message)
	// OnDeliver, if set, observes every in-order data delivery
	// (goodput accounting).
	OnDeliver func(now sim.Time, f *Flow, bytes int)

	// Timeouts counts RTO expirations across all flows.
	Timeouts int

	pingers []*Pinger

	// pool recycles packets along this stack's path: every segment, ACK,
	// and probe is allocated from it, and deliver returns each packet once
	// its handler has consumed it. Handlers copy the fields they need and
	// never retain the pointer, so the packet is dead when deliver's
	// dispatch returns. The pool is engine-local, like the engine's event
	// freelist — never shared across goroutines.
	pool pkt.Pool

	// startFn is the stored StartAt callback; keeping one long-lived
	// func(any) lets StartAt schedule through AtArg without a per-flow
	// closure.
	startFn func(any)

	// prof and the per-kind scopes, when attached via SetProfiler,
	// bracket deliver's dispatch with cost-profiler scopes so endpoint
	// protocol work (ACK clocking, retransmit arming, new segments it
	// pushes into ports) is attributed to the transport. Nil = off.
	prof      *prof.Profiler
	dataScope *prof.Scope
	ackScope  *prof.Scope
	pingScope *prof.Scope
}

// NewStack wires a transport stack onto the given hosts, installing itself
// as each host's packet handler.
func NewStack(eng *sim.Engine, cfg Config, hosts []*fabric.Host) *Stack {
	s := &Stack{
		eng:   eng,
		cfg:   cfg.withDefaults(),
		hosts: hosts,
	}
	s.startFn = func(v any) { s.Start(v.(*Flow)) }
	for _, h := range hosts {
		h.Handler = s.deliver
	}
	return s
}

// SetProfiler brackets deliver's per-kind dispatch with cost-profiler
// scopes under "transport:data", "transport:ack", and "transport:probe".
// Attach at setup, before traffic flows; the scopes only observe, so
// fingerprints are unchanged.
func (s *Stack) SetProfiler(p *prof.Profiler) {
	s.prof = p
	s.dataScope = p.NewScope("transport:data")
	s.ackScope = p.NewScope("transport:ack")
	s.pingScope = p.NewScope("transport:probe")
}

// Pool exposes the stack's packet freelist (diagnostics and tests).
func (s *Stack) Pool() *pkt.Pool { return &s.pool }

// Config returns the stack's effective configuration.
func (s *Stack) Config() Config { return s.cfg }

// NewFlowID hands out a fresh flow identifier.
func (s *Stack) NewFlowID() pkt.FlowID {
	id := s.nextID
	s.nextID++
	return id
}

// ensureLen grows sl to hold index n-1, zero-filling new entries. The
// backing array at least doubles so sequential registration is amortized
// O(1).
func ensureLen[T any](sl []T, n int) []T {
	if n <= cap(sl) {
		return sl[:max(len(sl), n)]
	}
	nb := make([]T, n, 2*n)
	copy(nb, sl)
	return nb
}

// setSender registers snd under id, growing the demux table as needed.
func (s *Stack) setSender(id pkt.FlowID, snd *Sender) {
	s.senders = ensureLen(s.senders, int(id)+1)
	s.senders[id] = snd
}

// setReceiver registers r under id.
func (s *Stack) setReceiver(id pkt.FlowID, r *receiver) {
	s.receivers = ensureLen(s.receivers, int(id)+1)
	s.receivers[id] = r
}

// setPinger registers pg under id.
func (s *Stack) setPinger(id pkt.FlowID, pg *Pinger) {
	s.pingers = ensureLen(s.pingers, int(id)+1)
	s.pingers[id] = pg
}

// sender returns the sender registered under id, or nil.
func (s *Stack) sender(id pkt.FlowID) *Sender {
	if uint(id) < uint(len(s.senders)) {
		return s.senders[id]
	}
	return nil
}

// Start begins transmitting flow f at the current time. The flow must have
// a fresh ID (use NewFlowID) and Src/Dst inside the host set.
func (s *Stack) Start(f *Flow) *Sender {
	if f.Tag == nil {
		f.Tag = StaticTag(f.Class)
	}
	if f.Size <= 0 {
		panic(fmt.Sprintf("transport: flow %d has size %d", f.ID, f.Size))
	}
	if s.sender(f.ID) != nil {
		panic(fmt.Sprintf("transport: duplicate flow id %d", f.ID))
	}
	f.Start = s.eng.Now()
	snd := newSender(s, f)
	s.setSender(f.ID, snd)
	s.setReceiver(f.ID, newReceiver(s, f))
	snd.sendMore()
	return snd
}

// StartAt schedules flow f to start at time t.
func (s *Stack) StartAt(t sim.Time, f *Flow) {
	s.eng.AtArg(t, s.startFn, f)
}

// deliver dispatches a packet that reached its destination host and then
// recycles it: handlers copy out what they need, so after the dispatch the
// packet is owned by no one and goes back to the pool.
func (s *Stack) deliver(p *pkt.Packet) {
	switch p.Kind {
	case pkt.Data:
		if s.prof != nil {
			s.dataScope.Enter()
		}
		if id := uint(p.Flow); id < uint(len(s.receivers)) {
			if r := s.receivers[id]; r != nil {
				r.onData(p)
			}
		}
	case pkt.Ack:
		if s.prof != nil {
			s.ackScope.Enter()
		}
		if id := uint(p.Flow); id < uint(len(s.senders)) {
			if snd := s.senders[id]; snd != nil {
				snd.onAck(p)
			}
		}
	case pkt.Ping:
		if s.prof != nil {
			s.pingScope.Enter()
		}
		s.echoPing(p)
	case pkt.Pong:
		if s.prof != nil {
			s.pingScope.Enter()
		}
		if id := uint(p.Flow); id < uint(len(s.pingers)) {
			if pg := s.pingers[id]; pg != nil {
				pg.onPong(p)
			}
		}
	}
	s.pool.Put(p)
	if s.prof != nil {
		s.prof.Exit()
	}
}

// send pushes a packet into the network from host src.
func (s *Stack) send(src int, p *pkt.Packet) {
	s.hosts[src].Send(p)
}

// finish records flow completion at the receiver.
func (s *Stack) finish(f *Flow) {
	f.Done = s.eng.Now()
	if s.OnDone != nil {
		s.OnDone(f)
	}
}

// ecnCodepoint returns the codepoint data packets carry: ECT(0) when ECN
// is on, Not-ECT for plain Reno.
func (s *Stack) ecnCodepoint() pkt.ECN {
	if s.cfg.CC == Reno {
		return pkt.NotECT
	}
	return pkt.ECT0
}
