package transport

import (
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// Sender is the per-flow TCP sending state machine: NewReno slow start,
// congestion avoidance, fast retransmit/recovery, RTO with exponential
// backoff and a floor — with the ECN reaction selected by Config.CC
// layered on top (DCTCP fractional cuts or ECN* half cuts, both gated to
// once per window of data, RFC 3168-style).
type Sender struct {
	stack *Stack
	flow  *Flow
	mss   int64

	// Window state, in segments (cwnd fractional for CA growth).
	cwnd     float64
	ssthresh float64

	// Sequence state, in bytes.
	sndUna int64
	sndNxt int64

	// Loss recovery.
	dupAcks    int
	inRecovery bool
	recover    int64 // highest byte sent when recovery began

	// ECN state.
	alpha     float64 // DCTCP marked-fraction EWMA
	ackedWin  int64   // bytes acked in the current alpha window
	markedWin int64   // of which carried ECN-echo
	alphaEnd  int64   // alpha window closes when sndUna passes this
	cwrEnd    int64   // at most one window cut until sndUna passes this

	// RTT estimation and retransmission timer.
	srtt, rttvar sim.Time
	backoff      int
	rtoTimer     sim.EventRef
	rtoFn        func() // stored onRTO callback, so arming allocates nothing

	done bool // all bytes acked

	// msg is the message currently in flight on a persistent
	// connection, for timeout attribution; nil for plain flows.
	msg *Message
	// lastTx is when the sender last transmitted, for slow-start
	// restart after idleness.
	lastTx sim.Time

	// Diagnostics.
	SentBytes       int64 // payload bytes transmitted, incl. retransmissions
	RetransmitBytes int64 // payload bytes retransmitted
	FastRetransmits int   // fast-retransmit events
	PartialAckRetx  int   // NewReno partial-ack retransmissions
	TimeoutRetx     int   // go-back-N retransmission rounds
}

func newSender(s *Stack, f *Flow) *Sender {
	snd := &Sender{
		stack:    s,
		flow:     f,
		mss:      int64(s.cfg.MSS),
		cwnd:     float64(s.cfg.InitWindow),
		ssthresh: float64(s.cfg.MaxWindow),
	}
	snd.rtoFn = snd.onRTO
	return snd
}

// Flow returns the flow this sender drives.
func (snd *Sender) Flow() *Flow { return snd.flow }

// Cwnd returns the current congestion window in segments.
func (snd *Sender) Cwnd() float64 { return snd.cwnd }

// Alpha returns the DCTCP marked-fraction estimate.
func (snd *Sender) Alpha() float64 { return snd.alpha }

// Done reports whether every byte has been cumulatively acknowledged.
func (snd *Sender) Done() bool { return snd.done }

// window returns the effective window in bytes.
func (snd *Sender) window() int64 {
	w := snd.cwnd
	if mx := float64(snd.stack.cfg.MaxWindow); w > mx {
		w = mx
	}
	if w < 1 {
		w = 1
	}
	return int64(w) * snd.mss
}

// sendMore transmits as many new segments as the window allows. It only
// arms the retransmission timer if none is pending: restarting it here
// would push the deadline back on every duplicate ACK, letting a lost
// retransmission stall recovery forever (RFC 6298 restarts the timer only
// when new data is cumulatively acknowledged).
func (snd *Sender) sendMore() {
	for snd.sndNxt < snd.flow.Size && snd.sndNxt-snd.sndUna < snd.window() {
		snd.transmit(snd.sndNxt)
		snd.sndNxt += snd.segLen(snd.sndNxt)
	}
	if !snd.rtoTimer.Pending() {
		snd.armRTO()
	}
}

// segLen returns the payload length of the segment at offset.
func (snd *Sender) segLen(offset int64) int64 {
	n := snd.flow.Size - offset
	if n > snd.mss {
		n = snd.mss
	}
	return n
}

// transmit emits the segment at offset (new data or retransmission).
func (snd *Sender) transmit(offset int64) {
	n := snd.segLen(offset)
	snd.SentBytes += n
	if offset < snd.sndNxt {
		snd.RetransmitBytes += n
	}
	snd.lastTx = snd.stack.eng.Now()
	p := snd.stack.pool.Get()
	*p = pkt.Packet{
		Flow:   snd.flow.ID,
		Src:    snd.flow.Src,
		Dst:    snd.flow.Dst,
		Kind:   pkt.Data,
		Seq:    offset,
		Len:    int(n),
		Size:   int(n) + pkt.HeaderSize,
		ECN:    snd.stack.ecnCodepoint(),
		DSCP:   snd.flow.Tag(offset),
		SentAt: snd.stack.eng.Now(),
	}
	snd.stack.send(snd.flow.Src, p)
}

// onAck processes one acknowledgment.
func (snd *Sender) onAck(p *pkt.Packet) {
	if snd.done {
		return
	}
	if p.ECE {
		snd.onECE()
	}
	switch {
	case p.Ack > snd.sndUna:
		snd.onNewAck(p)
	case p.Ack == snd.sndUna && snd.sndNxt > snd.sndUna:
		snd.onDupAck()
	}
}

// onECE applies the CC-specific window cut, at most once per window of
// data (the RFC 3168 CWR convention the paper's transports follow).
func (snd *Sender) onECE() {
	if snd.stack.cfg.CC == Reno {
		return
	}
	if snd.sndUna < snd.cwrEnd || snd.inRecovery {
		return
	}
	snd.cwrEnd = snd.sndNxt
	switch snd.stack.cfg.CC {
	case DCTCP:
		snd.cwnd *= 1 - snd.alpha/2
	case ECNStar:
		snd.cwnd /= 2
	}
	if snd.cwnd < 1 {
		snd.cwnd = 1
	}
	snd.ssthresh = snd.cwnd
}

// onNewAck handles an ACK that advances sndUna.
func (snd *Sender) onNewAck(p *pkt.Packet) {
	newly := p.Ack - snd.sndUna
	snd.ackedWin += newly
	if p.ECE {
		snd.markedWin += newly
	}
	if p.Echo > 0 {
		snd.sampleRTT(snd.stack.eng.Now() - p.Echo)
	}
	snd.backoff = 0
	snd.dupAcks = 0
	snd.sndUna = p.Ack

	if snd.inRecovery {
		if snd.sndUna >= snd.recover {
			// Full recovery: deflate to ssthresh.
			snd.inRecovery = false
			snd.cwnd = snd.ssthresh
		} else {
			// NewReno partial ACK: the next hole is lost too —
			// retransmit it immediately and deflate by the
			// acked amount.
			snd.PartialAckRetx++
			snd.transmit(snd.sndUna)
			snd.cwnd -= float64(newly) / float64(snd.mss)
			if snd.cwnd < 1 {
				snd.cwnd = 1
			}
			snd.cwnd++
		}
	} else {
		segs := float64(newly) / float64(snd.mss)
		if snd.cwnd < snd.ssthresh {
			snd.cwnd += segs // slow start
		} else {
			snd.cwnd += segs / snd.cwnd // congestion avoidance
		}
	}

	// Close the DCTCP alpha window once per RTT of data.
	if snd.sndUna >= snd.alphaEnd {
		if snd.ackedWin > 0 {
			f := float64(snd.markedWin) / float64(snd.ackedWin)
			g := snd.stack.cfg.DCTCPg
			snd.alpha = (1-g)*snd.alpha + g*f
		}
		snd.ackedWin, snd.markedWin = 0, 0
		snd.alphaEnd = snd.sndNxt
	}

	if snd.sndUna >= snd.flow.Size {
		snd.done = true
		snd.stack.eng.Cancel(snd.rtoTimer)
		return
	}
	snd.armRTO() // progress was made: restart the timer
	snd.sendMore()
}

// onDupAck handles a duplicate ACK: three trigger fast retransmit, and
// further duplicates inflate the window during recovery.
func (snd *Sender) onDupAck() {
	snd.dupAcks++
	if snd.inRecovery {
		snd.cwnd++
		snd.sendMore()
		return
	}
	if snd.dupAcks == 3 {
		snd.ssthresh = snd.cwnd / 2
		if snd.ssthresh < 2 {
			snd.ssthresh = 2
		}
		snd.recover = snd.sndNxt
		snd.inRecovery = true
		snd.FastRetransmits++
		snd.transmit(snd.sndUna)
		snd.cwnd = snd.ssthresh + 3
		snd.armRTO()
	}
}

// sampleRTT feeds one RTT measurement into the SRTT/RTTVAR estimator
// (RFC 6298 gains).
func (snd *Sender) sampleRTT(rtt sim.Time) {
	if rtt <= 0 {
		return
	}
	if snd.srtt == 0 {
		snd.srtt = rtt
		snd.rttvar = rtt / 2
		return
	}
	d := snd.srtt - rtt
	if d < 0 {
		d = -d
	}
	snd.rttvar = (3*snd.rttvar + d) / 4
	snd.srtt = (7*snd.srtt + rtt) / 8
}

// rto returns the current timeout with backoff applied.
func (snd *Sender) rto() sim.Time {
	cfg := snd.stack.cfg
	t := cfg.RTOInit
	if snd.srtt > 0 {
		t = snd.srtt + 4*snd.rttvar
	}
	if t < cfg.RTOMin {
		t = cfg.RTOMin
	}
	for i := 0; i < snd.backoff && t < 8*sim.Second; i++ {
		t *= 2
	}
	return t
}

// armRTO (re)starts the retransmission timer while data is outstanding.
func (snd *Sender) armRTO() {
	snd.stack.eng.Cancel(snd.rtoTimer)
	if snd.sndUna >= snd.sndNxt || snd.done {
		return
	}
	snd.rtoTimer = snd.stack.eng.After(snd.rto(), snd.rtoFn)
}

// resume restarts transmission after new bytes were appended to the
// stream (persistent-connection mode). A connection idle for longer than
// its RTO undergoes slow-start restart (RFC 2861): the window collapses to
// the initial window so a stale cwnd cannot burst into changed congestion
// conditions.
func (snd *Sender) resume(now sim.Time) {
	if snd.done && now-snd.lastTx > snd.rto() {
		if iw := float64(snd.stack.cfg.InitWindow); snd.cwnd > iw {
			snd.cwnd = iw
		}
	}
	snd.done = false
	snd.sendMore()
}

// onRTO handles a retransmission timeout: collapse to one segment and
// resume from the last cumulative ACK (go-back-N).
func (snd *Sender) onRTO() {
	if snd.done {
		return
	}
	snd.flow.Timeouts++
	snd.stack.Timeouts++
	if snd.msg != nil {
		snd.msg.Timeouts++
	}
	flight := float64(snd.sndNxt-snd.sndUna) / float64(snd.mss)
	snd.ssthresh = flight / 2
	if snd.ssthresh < 2 {
		snd.ssthresh = 2
	}
	snd.cwnd = 1
	snd.dupAcks = 0
	snd.inRecovery = false
	snd.sndNxt = snd.sndUna
	snd.backoff++
	snd.TimeoutRetx++
	snd.sendMore()
}
