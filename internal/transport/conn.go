package transport

import (
	"fmt"

	"tcn/internal/sim"
)

// Message is one application-level transfer (the paper's "flow") carried
// over a persistent connection. The FCT experiments measure Done-Arrive
// per message, exactly like the paper's client application which fetches
// messages over pre-opened connections (§6.1.2).
type Message struct {
	Size  int64
	Class uint8
	// Tag assigns per-segment DSCP from the byte offset *within the
	// message*; nil means StaticTag(Class). PIAS taggers plug in here.
	Tag Tagger

	// Arrive is when the application issued the request; Done when the
	// last byte reached the receiver.
	Arrive, Done sim.Time
	// Timeouts counts RTO expirations while this message was in flight.
	Timeouts int

	startOff int64 // stream offset of the first byte
	conn     *Conn
}

// FCT returns the message completion time.
func (m *Message) FCT() sim.Time { return m.Done - m.Arrive }

// Conn is a persistent TCP connection carrying messages one at a time.
// Its congestion state (cwnd, ssthresh, DCTCP alpha, RTT estimate)
// persists across messages, with a slow-start-restart cwnd clamp after
// idleness — the behaviour of the paper's testbed where flows ride warm
// Linux connections instead of slow-starting from scratch.
type Conn struct {
	stack *Stack
	snd   *Sender
	rcv   *receiver
	cur   *Message
}

// NewConn opens a persistent connection between two hosts. The connection
// is idle until a message is submitted.
func (s *Stack) NewConn(src, dst int) *Conn {
	f := &Flow{
		ID:  s.NewFlowID(),
		Src: src,
		Dst: dst,
		Tag: StaticTag(0),
	}
	c := &Conn{stack: s}
	c.snd = newSender(s, f)
	c.snd.done = true // nothing to send yet
	c.rcv = newReceiver(s, f)
	c.rcv.streaming = true
	s.setSender(f.ID, c.snd)
	s.setReceiver(f.ID, c.rcv)
	// The wire-level tag resolves through the connection so each
	// message can carry its own (possibly offset-dependent) DSCP.
	f.Tag = c.tagAt
	return c
}

// Idle reports whether the connection can accept a new message now.
func (c *Conn) Idle() bool { return c.cur == nil }

// Sender exposes the underlying TCP sender (diagnostics).
func (c *Conn) Sender() *Sender { return c.snd }

// Send begins transferring m immediately. The connection must be idle.
func (c *Conn) Send(m *Message) {
	if !c.Idle() {
		panic("transport: connection busy")
	}
	if m.Size <= 0 {
		panic(fmt.Sprintf("transport: message size %d", m.Size))
	}
	now := c.stack.eng.Now()
	m.Arrive = now
	m.startOff = c.snd.flow.Size
	m.conn = c
	c.cur = m
	c.snd.flow.Size += m.Size
	c.snd.flow.Class = m.Class
	c.rcv.flow.Class = m.Class                     // ACK class follows the active message
	c.rcv.boundaries = append(c.rcv.boundaries, m) //tcnlint:hotpath one append per queued message, not per packet
	c.snd.msg = m
	c.snd.resume(now)
}

// tagAt resolves the DSCP of the segment at stream offset off: bytes of
// the active message use its tagger (relative to the message start);
// retransmissions of earlier messages fall back to the current class.
func (c *Conn) tagAt(off int64) uint8 {
	m := c.cur
	if m == nil || off < m.startOff {
		if m == nil {
			return 0
		}
		return m.Class
	}
	if m.Tag != nil {
		return m.Tag(off - m.startOff)
	}
	return m.Class
}

// finishMessage is called by the receiver when the last byte of the
// connection's oldest outstanding message arrives.
func (c *Conn) finishMessage(m *Message) {
	m.Done = c.stack.eng.Now()
	if c.cur == m {
		c.cur = nil
		c.snd.msg = nil
	}
	if c.stack.OnMessage != nil {
		c.stack.OnMessage(m)
	}
}

// Pool manages persistent connections the way the paper's client does:
// it pre-opens Warm connections per host pair and submits each message on
// an idle connection, opening a fresh one when none is available.
type Pool struct {
	stack *Stack
	warm  int
	conns map[[2]int][]*Conn

	// Opened counts connections created beyond the warm set.
	Opened int
}

// NewPool returns a pool that lazily pre-opens warm connections per pair.
func NewPool(s *Stack, warm int) *Pool {
	return &Pool{stack: s, warm: warm, conns: make(map[[2]int][]*Conn)}
}

// Submit sends m from src to dst on an idle connection, opening one if
// needed.
func (p *Pool) Submit(src, dst int, m *Message) {
	key := [2]int{src, dst}
	cs := p.conns[key]
	if cs == nil {
		cs = make([]*Conn, 0, p.warm)
		for i := 0; i < p.warm; i++ {
			cs = append(cs, p.stack.NewConn(src, dst))
		}
		p.conns[key] = cs
	}
	for _, c := range cs {
		if c.Idle() {
			c.Send(m)
			return
		}
	}
	c := p.stack.NewConn(src, dst)
	p.conns[key] = append(cs, c)
	p.Opened++
	c.Send(m)
}

// Conns returns the total number of connections in the pool.
func (p *Pool) Conns() int {
	n := 0
	for _, cs := range p.conns {
		n += len(cs)
	}
	return n
}
