package transport

import (
	"tcn/internal/pkt"
)

// receiver is the per-flow receive side: cumulative ACK with out-of-order
// buffering, per-packet ACKs, and per-packet ECN echo (every ACK reports
// whether the segment that triggered it was CE-marked, which gives DCTCP
// an exact marked-byte fraction — the behaviour of the DCTCP receiver
// state machine at its accuracy limit).
type receiver struct {
	stack *Stack
	flow  *Flow

	rcvNxt   int64
	ooo      map[int64]int64 // segment start -> end, for gaps
	finished bool
	counting bool // datagram mode: count every payload byte, never ACK

	// streaming mode (persistent connections): message boundaries
	// replace whole-flow completion.
	streaming  bool
	boundaries []*Message
}

func newReceiver(s *Stack, f *Flow) *receiver {
	return &receiver{stack: s, flow: f, ooo: make(map[int64]int64)}
}

// newCountingReceiver returns a receiver for unreliable streams (CBR):
// every arriving payload byte counts as delivered and no ACKs are sent.
func newCountingReceiver(s *Stack, f *Flow) *receiver {
	r := newReceiver(s, f)
	r.counting = true
	return r
}

// onData processes an arriving data segment and responds with an ACK.
func (r *receiver) onData(p *pkt.Packet) {
	if r.counting {
		if r.stack.OnDeliver != nil {
			r.stack.OnDeliver(r.stack.eng.Now(), r.flow, p.Len)
		}
		return
	}
	ce := p.ECN == pkt.CE
	end := p.Seq + int64(p.Len)
	dup := false

	switch {
	case p.Seq == r.rcvNxt:
		old := r.rcvNxt
		r.rcvNxt = end
		// Absorb any previously buffered contiguous segments.
		for {
			e, ok := r.ooo[r.rcvNxt]
			if !ok {
				break
			}
			delete(r.ooo, r.rcvNxt)
			r.rcvNxt = e
		}
		if r.stack.OnDeliver != nil {
			r.stack.OnDeliver(r.stack.eng.Now(), r.flow, int(r.rcvNxt-old))
		}
	case p.Seq > r.rcvNxt:
		r.ooo[p.Seq] = end
		dup = true
	default:
		// Stale retransmission below rcvNxt.
		dup = true
	}

	r.sendAck(p, ce, dup)

	if r.streaming {
		for len(r.boundaries) > 0 {
			m := r.boundaries[0]
			if r.rcvNxt < m.startOff+m.Size {
				break
			}
			r.boundaries = r.boundaries[1:]
			m.conn.finishMessage(m)
		}
		return
	}
	if !r.finished && r.rcvNxt >= r.flow.Size {
		r.finished = true
		r.stack.finish(r.flow)
	}
}

// sendAck emits a pure ACK for the current cumulative state.
func (r *receiver) sendAck(trigger *pkt.Packet, ce, dup bool) {
	dscp := r.flow.Class
	if f := r.stack.cfg.AckDSCP; f != nil {
		dscp = f(r.flow)
	}
	ack := r.stack.pool.Get()
	*ack = pkt.Packet{
		Flow:   r.flow.ID,
		Src:    r.flow.Dst,
		Dst:    r.flow.Src,
		Kind:   pkt.Ack,
		Ack:    r.rcvNxt,
		ECE:    ce,
		DupACK: dup,
		Echo:   trigger.SentAt,
		Size:   pkt.AckSize,
		DSCP:   dscp,
		SentAt: r.stack.eng.Now(),
	}
	r.stack.send(r.flow.Dst, ack)
}
