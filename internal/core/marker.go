// Package core implements the paper's primary contribution: Time-based
// Congestion Notification (TCN), a sojourn-time based, stateless,
// instantaneous ECN marking scheme that works over arbitrary packet
// schedulers (§4).
//
// The package also defines the Marker contract every AQM in this repository
// implements (the baselines live in internal/aqm) and the 16-bit hardware
// timestamp arithmetic from the paper's feasibility analysis (§4.2).
package core

import (
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// PortState is the read-only view of an egress port a marker may consult
// when deciding whether to mark a packet. Queue-length based schemes (RED,
// MQ-ECN) read queue or port occupancy; sojourn-time schemes (TCN, CoDel)
// only need the packet's own enqueue timestamp and ignore it.
type PortState interface {
	// NumQueues returns the number of per-class queues on the port.
	NumQueues() int
	// QueueLen returns the packet count of queue i.
	QueueLen(i int) int
	// QueueBytes returns the buffered bytes of queue i.
	QueueBytes(i int) int
	// PortBytes returns the total buffered bytes across the port.
	PortBytes() int
	// LinkRate returns the port's line rate in bits per second.
	LinkRate() int64
}

// Marker is an ECN marking scheme attached to an egress port. Markers only
// ever set the CE codepoint — per the paper's evaluation, all schemes
// (including CoDel) are configured to mark rather than drop, and packet
// loss happens only through buffer exhaustion.
//
// Every mark must be attributed: the pipeline passes a scratch Verdict
// and the marker routes CE application through Verdict.Fire, filling in
// the inputs its rule consulted. Callers may pass nil (Fire degrades to a
// plain mark) but the pipelines never do.
type Marker interface {
	// Name identifies the scheme in logs and result tables.
	Name() string
	// OnEnqueue is called when packet p has been admitted to queue i,
	// before the scheduler sees it. Enqueue-side schemes decide here.
	OnEnqueue(now sim.Time, i int, p *pkt.Packet, st PortState, v *Verdict)
	// OnDequeue is called when packet p leaves queue i, immediately
	// before transmission. Dequeue-side schemes decide here.
	OnDequeue(now sim.Time, i int, p *pkt.Packet, st PortState, v *Verdict)
}

// MarkCounter is implemented by markers that count the CE marks they
// apply. Instrumentation (experiment tables, the flight recorder's
// mark-rate probe) reads the count through this interface instead of
// type-switching over every concrete scheme.
type MarkCounter interface {
	// MarkCount returns the number of CE marks applied so far.
	MarkCount() int64
}

// MarkProber is implemented by markers that can report the probability
// with which they would mark a packet observed now — queue-length schemes
// from the port state, sojourn schemes from the given head-of-line
// sojourn. Implementations MUST be read-only: probing runs on the flight
// recorder's sampling ticks and must not perturb marker state.
type MarkProber interface {
	// MarkProb returns the instantaneous marking probability in [0, 1]
	// for queue i given the current head-of-line sojourn.
	MarkProb(now sim.Time, i int, sojourn sim.Time, st PortState) float64
}

// Nop is a Marker that never marks; it turns a port into a plain drop-tail
// multi-queue port.
type Nop struct{}

// Name implements Marker.
func (Nop) Name() string { return "none" }

// OnEnqueue implements Marker.
func (Nop) OnEnqueue(sim.Time, int, *pkt.Packet, PortState, *Verdict) {}

// OnDequeue implements Marker.
func (Nop) OnDequeue(sim.Time, int, *pkt.Packet, PortState, *Verdict) {}
