// Package core implements the paper's primary contribution: Time-based
// Congestion Notification (TCN), a sojourn-time based, stateless,
// instantaneous ECN marking scheme that works over arbitrary packet
// schedulers (§4).
//
// The package also defines the Marker contract every AQM in this repository
// implements (the baselines live in internal/aqm) and the 16-bit hardware
// timestamp arithmetic from the paper's feasibility analysis (§4.2).
package core

import (
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// PortState is the read-only view of an egress port a marker may consult
// when deciding whether to mark a packet. Queue-length based schemes (RED,
// MQ-ECN) read queue or port occupancy; sojourn-time schemes (TCN, CoDel)
// only need the packet's own enqueue timestamp and ignore it.
type PortState interface {
	// NumQueues returns the number of per-class queues on the port.
	NumQueues() int
	// QueueLen returns the packet count of queue i.
	QueueLen(i int) int
	// QueueBytes returns the buffered bytes of queue i.
	QueueBytes(i int) int
	// PortBytes returns the total buffered bytes across the port.
	PortBytes() int
	// LinkRate returns the port's line rate in bits per second.
	LinkRate() int64
}

// Marker is an ECN marking scheme attached to an egress port. Markers only
// ever set the CE codepoint — per the paper's evaluation, all schemes
// (including CoDel) are configured to mark rather than drop, and packet
// loss happens only through buffer exhaustion.
type Marker interface {
	// Name identifies the scheme in logs and result tables.
	Name() string
	// OnEnqueue is called when packet p has been admitted to queue i,
	// before the scheduler sees it. Enqueue-side schemes decide here.
	OnEnqueue(now sim.Time, i int, p *pkt.Packet, st PortState)
	// OnDequeue is called when packet p leaves queue i, immediately
	// before transmission. Dequeue-side schemes decide here.
	OnDequeue(now sim.Time, i int, p *pkt.Packet, st PortState)
}

// Nop is a Marker that never marks; it turns a port into a plain drop-tail
// multi-queue port.
type Nop struct{}

// Name implements Marker.
func (Nop) Name() string { return "none" }

// OnEnqueue implements Marker.
func (Nop) OnEnqueue(sim.Time, int, *pkt.Packet, PortState) {}

// OnDequeue implements Marker.
func (Nop) OnDequeue(sim.Time, int, *pkt.Packet, PortState) {}
