package core

import (
	"fmt"

	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// Reason identifies which AQM rule produced a mark or drop. Every marker
// in the repository attributes its decisions through a Reason so that a
// run can be explained after the fact (§3's analysis of *why* per-queue
// ECN/RED misbehaves under generic scheduling is a statement about which
// rule fires when) instead of only counted.
type Reason uint8

// Decision reasons. ReasonUnknown is the zero value: a verdict that never
// became decisive. The tcnlint verdict analyzer enforces that no marker
// marks or drops a packet without replacing it.
const (
	ReasonUnknown Reason = iota
	// ReasonREDQueueAboveK: per-queue instantaneous occupancy above the
	// static threshold K (QueueRED, both sides).
	ReasonREDQueueAboveK
	// ReasonREDPortAboveK: aggregate port occupancy above K (PortRED).
	ReasonREDPortAboveK
	// ReasonREDPoolAboveK: shared service-pool occupancy above K (PoolRED).
	ReasonREDPoolAboveK
	// ReasonREDOracleAboveK: occupancy above the externally supplied
	// per-queue threshold (OracleRED).
	ReasonREDOracleAboveK
	// ReasonREDDynAboveK: occupancy above the Algorithm-1 dynamic
	// threshold K_i = avg_rate_i × RTT × λ (DynRED).
	ReasonREDDynAboveK
	// ReasonREDAvgAboveMax: WRED's EWMA average at or above Kmax
	// (deterministic mark).
	ReasonREDAvgAboveMax
	// ReasonREDProbabilistic: WRED's coin flip fired on the linear ramp
	// between Kmin and Kmax.
	ReasonREDProbabilistic
	// ReasonMQECNAboveK: occupancy above MQ-ECN's quantum/T_round
	// threshold.
	ReasonMQECNAboveK
	// ReasonCoDelSojournAboveTarget: the CoDel state machine marked on a
	// sojourn that stayed above target for an interval.
	ReasonCoDelSojournAboveTarget
	// ReasonTCNThreshold: instantaneous sojourn above T = RTT × λ (TCN,
	// HWTCN, and ProbTCN above Tmax).
	ReasonTCNThreshold
	// ReasonTCNProbabilistic: ProbTCN's coin flip fired on the ramp
	// between Tmin and Tmax.
	ReasonTCNProbabilistic
	// ReasonBufferOverflow: the shared buffer rejected the packet at
	// admission (the only packet loss in the simulator).
	ReasonBufferOverflow
	// ReasonECNIncapable: an AQM rule fired but the packet was not
	// ECN-capable, so no CE could be applied.
	ReasonECNIncapable

	numReasons // sentinel for sized arrays
)

// NumReasons is the number of defined reasons (including ReasonUnknown),
// for ledgers that keep exact per-reason counters in fixed arrays.
const NumReasons = int(numReasons)

func (r Reason) String() string {
	switch r {
	case ReasonUnknown:
		return "Unknown"
	case ReasonREDQueueAboveK:
		return "REDQueueAboveK"
	case ReasonREDPortAboveK:
		return "REDPortAboveK"
	case ReasonREDPoolAboveK:
		return "REDPoolAboveK"
	case ReasonREDOracleAboveK:
		return "REDOracleAboveK"
	case ReasonREDDynAboveK:
		return "REDDynAboveK"
	case ReasonREDAvgAboveMax:
		return "REDAvgAboveMax"
	case ReasonREDProbabilistic:
		return "REDProbabilistic"
	case ReasonMQECNAboveK:
		return "MQECNAboveK"
	case ReasonCoDelSojournAboveTarget:
		return "CoDelSojournAboveTarget"
	case ReasonTCNThreshold:
		return "TCNThreshold"
	case ReasonTCNProbabilistic:
		return "TCNProbabilistic"
	case ReasonBufferOverflow:
		return "BufferOverflow"
	case ReasonECNIncapable:
		return "ECNIncapable"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// Stage locates a verdict in the packet pipeline.
type Stage uint8

// Pipeline stages a verdict can be rendered at.
const (
	// StageEnqueue is enqueue-side marking, after admission.
	StageEnqueue Stage = iota
	// StageDequeue is dequeue-side marking, before transmission.
	StageDequeue
	// StageAdmission is buffer admission control (drops).
	StageAdmission
)

func (s Stage) String() string {
	switch s {
	case StageEnqueue:
		return "enqueue"
	case StageDequeue:
		return "dequeue"
	case StageAdmission:
		return "admission"
	default:
		return fmt.Sprintf("stage(%d)", uint8(s))
	}
}

// Verdict is the self-explanation of one marking/dropping decision: the
// rule that fired (Reason), where in the pipeline (Stage), the outcome,
// and the instantaneous inputs the rule consulted. The pipeline owner
// (fabric.Port, qdisc.Qdisc) resets one scratch Verdict per marker call
// and hands it down; markers fill in only the fields their rule reads, so
// an exported verdict shows exactly the evidence the decision was based
// on. The struct is plain data — threading it through the hot path costs
// no allocation.
type Verdict struct {
	// Stage is where the decision was rendered.
	Stage Stage
	// Reason is the rule that fired; ReasonUnknown = nothing fired.
	Reason Reason
	// Marked reports that CE was applied to the packet.
	Marked bool
	// Dropped reports that the packet was rejected at admission.
	Dropped bool

	// QueueBytes is the packet's queue occupancy at decision time.
	QueueBytes int
	// PortBytes is the whole port's buffered bytes at decision time.
	PortBytes int
	// AvgBytes is the averaged occupancy consulted, if any (WRED EWMA).
	AvgBytes float64
	// Sojourn is the packet's queueing delay consulted, if any.
	Sojourn sim.Time
	// ThresholdBytes is the byte threshold compared against, if any.
	ThresholdBytes int
	// ThresholdTime is the time threshold compared against, if any.
	ThresholdTime sim.Time
	// Prob is the marking probability in effect, if the rule is
	// probabilistic (1 for the deterministic region).
	Prob float64
	// TokensBytes is the shaper's token-bucket level, when the pipeline
	// has one (qdisc); 0 otherwise.
	TokensBytes float64
}

// Reset clears v for a new decision at stage s, pre-filled with the
// occupancy context every rule shares.
func (v *Verdict) Reset(s Stage, queueBytes, portBytes int) {
	*v = Verdict{Stage: s, QueueBytes: queueBytes, PortBytes: portBytes}
}

// Decisive reports whether any rule fired: the packet was marked,
// dropped, or would have been marked but could not carry CE.
func (v *Verdict) Decisive() bool { return v.Reason != ReasonUnknown }

// Fire applies CE to p on behalf of rule r and records the outcome: on
// success the verdict becomes a Marked/r verdict, and when p cannot carry
// CE it becomes an (unmarked) ECNIncapable verdict, so threshold
// crossings on non-ECT traffic remain visible in the ledger. Markers must
// route every mark through Fire rather than calling p.Mark() directly
// (enforced by the tcnlint verdict analyzer); a nil v degrades to a plain
// mark so tests may drive markers without attribution.
func (v *Verdict) Fire(r Reason, p *pkt.Packet) bool {
	if v == nil {
		return p.Mark() //tcnlint:verdict nil-verdict fallback is the one sanctioned direct mark
	}
	if p.Mark() { //tcnlint:verdict Fire is the attribution wrapper itself
		v.Reason = r
		v.Marked = true
		return true
	}
	v.Reason = ReasonECNIncapable
	return false
}
