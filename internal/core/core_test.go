package core

import (
	"testing"
	"testing/quick"

	"tcn/internal/pkt"
	"tcn/internal/sim"
	"tcn/internal/testutil"
)

func ect(enq sim.Time) *pkt.Packet { return &pkt.Packet{ECN: pkt.ECT0, Size: 1500, EnqueuedAt: enq} }

func TestTCNMarksStrictlyAboveThreshold(t *testing.T) {
	m := NewTCN(100 * sim.Microsecond)
	cases := []struct {
		sojourn sim.Time
		want    bool
	}{
		{0, false},
		{99 * sim.Microsecond, false},
		{100 * sim.Microsecond, false}, // equal: no mark
		{100*sim.Microsecond + 1, true},
		{sim.Millisecond, true},
	}
	now := sim.Time(10 * sim.Millisecond)
	for _, c := range cases {
		p := ect(now - c.sojourn)
		m.OnDequeue(now, 0, p, nil, nil)
		if got := p.ECN == pkt.CE; got != c.want {
			t.Errorf("sojourn %v: marked=%v, want %v", c.sojourn, got, c.want)
		}
	}
	if m.Marks != 2 {
		t.Fatalf("marks = %d, want 2", m.Marks)
	}
}

func TestTCNIgnoresNonECT(t *testing.T) {
	m := NewTCN(10 * sim.Microsecond)
	p := &pkt.Packet{ECN: pkt.NotECT, EnqueuedAt: 0}
	m.OnDequeue(sim.Millisecond, 0, p, nil, nil)
	if p.ECN != pkt.NotECT || m.Marks != 0 {
		t.Fatal("TCN must not alter Not-ECT packets")
	}
}

func TestTCNEnqueueIsNoop(t *testing.T) {
	m := NewTCN(10 * sim.Microsecond)
	p := ect(0)
	m.OnEnqueue(sim.Millisecond, 0, p, nil, nil)
	if p.ECN == pkt.CE {
		t.Fatal("TCN acts only at dequeue")
	}
}

// TestTCNStateless verifies the §4.2 claim directly: the decision is a
// pure function of (sojourn, threshold) — no history dependence.
func TestTCNStateless(t *testing.T) {
	f := func(sojournsRaw []uint32) bool {
		const threshold = 100 * sim.Microsecond
		m := NewTCN(threshold)
		now := sim.Time(1) << 40
		for _, raw := range sojournsRaw {
			sojourn := sim.Time(raw % 1_000_000)
			p := ect(now - sojourn)
			m.OnDequeue(now, 0, p, nil, nil)
			// Regardless of everything that came before, the
			// outcome equals the pure function.
			if (p.ECN == pkt.CE) != Decide(sojourn, threshold) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecideIsIndependentOfQueueState(t *testing.T) {
	// Decide takes no queue state at all — compile-time statelessness.
	if Decide(101*sim.Nanosecond, 100*sim.Nanosecond) != true ||
		Decide(100*sim.Nanosecond, 100*sim.Nanosecond) != false {
		t.Fatal("Decide boundary wrong")
	}
}

func TestProbTCNEndpoints(t *testing.T) {
	const tmin, tmax = 10 * sim.Nanosecond, 20 * sim.Nanosecond
	if p := MarkProbability(5*sim.Nanosecond, tmin, tmax, 0.5); !testutil.Eq(p, 0) {
		t.Fatalf("below Tmin: %v", p)
	}
	if p := MarkProbability(25*sim.Nanosecond, tmin, tmax, 0.5); !testutil.Eq(p, 1) {
		t.Fatalf("above Tmax: %v", p)
	}
	if p := MarkProbability(15*sim.Nanosecond, tmin, tmax, 0.5); !testutil.Eq(p, 0.25) {
		t.Fatalf("midpoint: %v, want 0.25", p)
	}
	// Degenerate Tmin==Tmax behaves like plain TCN.
	if p := MarkProbability(tmin, tmin, tmin, 0.5); !testutil.Eq(p, 0) {
		t.Fatal("equal thresholds at boundary should not mark")
	}
	if p := MarkProbability(11*sim.Nanosecond, tmin, tmin, 0.5); !testutil.Eq(p, 1) {
		t.Fatal("equal thresholds above boundary should mark")
	}
}

func TestPropertyMarkProbabilityMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		s1, s2 := sim.Time(a), sim.Time(b)
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		const tmin, tmax = 100 * sim.Nanosecond, 10 * sim.Microsecond
		p1 := MarkProbability(s1, tmin, tmax, 0.8)
		p2 := MarkProbability(s2, tmin, tmax, 0.8)
		return p1 >= 0 && p2 <= 1 && p1 <= p2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestProbTCNMarkingRate(t *testing.T) {
	rng := sim.NewRand(7)
	m := NewProbTCN(100*sim.Nanosecond, 1100*sim.Nanosecond, 0.5, rng)
	now := sim.Time(1) << 30
	marked := 0
	const n = 20000
	for i := 0; i < n; i++ {
		p := ect(now - 600) // midpoint: probability 0.25
		m.OnDequeue(now, 0, p, nil, nil)
		if p.ECN == pkt.CE {
			marked++
		}
	}
	frac := float64(marked) / n
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("marking fraction %.3f, want ~0.25", frac)
	}
}

func TestProbTCNValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	rng := sim.NewRand(1)
	mustPanic("tmax<tmin", func() { NewProbTCN(20*sim.Nanosecond, 10*sim.Nanosecond, 0.5, rng) })
	mustPanic("pmax>1", func() { NewProbTCN(10*sim.Nanosecond, 20*sim.Nanosecond, 1.5, rng) })
	mustPanic("nil rng", func() { NewProbTCN(10*sim.Nanosecond, 20*sim.Nanosecond, 0.5, nil) })
	mustPanic("tcn zero threshold", func() { NewTCN(0) })
}

// --- hardware timestamp arithmetic (§4.2) ---

func TestHWClockSpan(t *testing.T) {
	// The paper's examples: 4ns × 2^16 ≈ 262us, 8ns × 2^16 ≈ 524us.
	if s := NewHWClock(4 * sim.Nanosecond).Span(); s != 262144 {
		t.Fatalf("4ns span %v, want 262144ns", s)
	}
	if s := NewHWClock(8 * sim.Nanosecond).Span(); s != 524288 {
		t.Fatalf("8ns span %v, want 524288ns", s)
	}
}

func TestHWClockWrapAround(t *testing.T) {
	c := NewHWClock(8 * sim.Nanosecond)
	// Enqueue just before the counter wraps, dequeue just after.
	enqT := c.Span() - 40*sim.Nanosecond
	deqT := c.Span() + 80*sim.Nanosecond
	got := c.Sojourn(c.Stamp(enqT), c.Stamp(deqT))
	if got != 120*sim.Nanosecond {
		t.Fatalf("wrapped sojourn %v, want 120ns", got)
	}
}

// Property: for any enqueue time and true sojourn below the span, the
// 16-bit reconstruction is within one tick of the truth.
func TestPropertyHWClockReconstruction(t *testing.T) {
	for _, res := range []sim.Time{4, 8} {
		c := NewHWClock(res)
		f := func(enqRaw uint64, sojournRaw uint32) bool {
			enq := sim.Time(enqRaw % (1 << 50))
			sojourn := sim.Time(sojournRaw) % (c.Span() - res)
			deq := enq + sojourn
			got := c.Sojourn(c.Stamp(enq), c.Stamp(deq))
			diff := got - sojourn
			if diff < 0 {
				diff = -diff
			}
			return diff < res
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Fatalf("resolution %v: %v", res, err)
		}
	}
}

// Property: HWTCN agrees with ideal TCN except within one tick of the
// threshold.
func TestPropertyHWTCNMatchesIdealTCN(t *testing.T) {
	const threshold = 100 * sim.Microsecond
	c := NewHWClock(8 * sim.Nanosecond)
	hw := NewHWTCN(c, threshold)
	ideal := NewTCN(threshold)
	f := func(enqRaw uint64, sojournRaw uint32) bool {
		enq := sim.Time(enqRaw % (1 << 48))
		sojourn := sim.Time(sojournRaw) % (c.Span() - 8)
		now := enq + sojourn
		p1, p2 := ect(enq), ect(enq)
		hw.OnDequeue(now, 0, p1, nil, nil)
		ideal.OnDequeue(now, 0, p2, nil, nil)
		if p1.ECN == p2.ECN {
			return true
		}
		// Disagreement only allowed within one tick of the threshold.
		d := sojourn - threshold
		if d < 0 {
			d = -d
		}
		return d <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHWTCNValidation(t *testing.T) {
	c := NewHWClock(8 * sim.Nanosecond)
	defer func() {
		if recover() == nil {
			t.Fatal("threshold beyond span must panic")
		}
	}()
	NewHWTCN(c, c.Span())
}

func TestNopMarker(t *testing.T) {
	var m Marker = Nop{}
	p := ect(0)
	m.OnEnqueue(100*sim.Nanosecond, 0, p, nil, nil)
	m.OnDequeue(100*sim.Nanosecond, 0, p, nil, nil)
	if p.ECN == pkt.CE || m.Name() != "none" {
		t.Fatal("Nop must not mark")
	}
}

var _ Marker = (*TCN)(nil)
var _ Marker = (*ProbTCN)(nil)
var _ Marker = (*HWTCN)(nil)
