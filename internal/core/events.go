package core

import "fmt"

// EventKind classifies a packet-level occurrence. It is the single source
// of truth for the "tx"/"mark"/"drop" naming shared by every export
// surface (trace JSONL, the decision ledger, Perfetto instants, flight
// spans); internal/trace aliases it as trace.Kind.
type EventKind uint8

// Packet event kinds.
const (
	// EventTx is a packet leaving a port onto its link.
	EventTx EventKind = iota
	// EventMark is a transmit whose packet carried CE.
	EventMark
	// EventDrop is a packet rejected at admission.
	EventDrop

	numEventKinds // sentinel for sized arrays
)

// NumEventKinds is the number of defined kinds, for exact counter arrays.
const NumEventKinds = int(numEventKinds)

func (k EventKind) String() string {
	switch k {
	case EventTx:
		return "tx"
	case EventMark:
		return "mark"
	case EventDrop:
		return "drop"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}
