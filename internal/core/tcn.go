package core

import (
	"fmt"

	"tcn/internal/obs"
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// TCN is Time-based Congestion Notification (§4.1): a departing packet is
// ECN-marked iff its instantaneous sojourn time exceeds a static threshold
//
//	T = RTT × λ                                   (Equation 3)
//
// Because the signal is time rather than queue length, the threshold is
// independent of the (constantly changing) per-queue drain rates, so the
// same constant works under any scheduler and any traffic mix. The marking
// decision is stateless: a pure function of the packet's own sojourn time,
// with no per-queue or cross-packet state (§4.2).
type TCN struct {
	// Threshold is the sojourn-time marking threshold T = RTT × λ.
	Threshold sim.Time

	// Marks counts CE marks applied, for instrumentation.
	Marks int64

	oMarks *obs.Counter // CE marks applied
	oOver  *obs.Counter // sojourn threshold crossings (incl. non-ECT)
}

// Instrument records marking decisions into a stats registry under
// label: "<label>.marks" counts CE marks applied,
// "<label>.sojourn_over_threshold" counts every threshold crossing,
// including packets that could not be marked (non-ECT).
func (t *TCN) Instrument(r *obs.Registry, label string) {
	t.oMarks = r.Counter(label + ".marks")
	t.oOver = r.Counter(label + ".sojourn_over_threshold")
}

// NewTCN returns a TCN marker with the standard threshold RTT × λ.
// λ depends on the congestion control in use: 1 for ECN* (plain
// ECN-enabled TCP) and the DCTCP-recommended fraction for DCTCP; callers
// pass the product directly.
func NewTCN(threshold sim.Time) *TCN {
	if threshold <= 0 {
		panic(fmt.Sprintf("core: TCN threshold %v must be positive", threshold))
	}
	return &TCN{Threshold: threshold}
}

// Name implements Marker.
func (t *TCN) Name() string { return "TCN" }

// OnEnqueue implements Marker. TCN does nothing at enqueue: the enqueue
// timestamp that the sojourn computation needs is attached by the port to
// every buffered packet (the 2-byte metadata of §4.2), not by the marker.
func (t *TCN) OnEnqueue(sim.Time, int, *pkt.Packet, PortState, *Verdict) {}

// OnDequeue implements Marker: instantaneous, stateless sojourn check.
func (t *TCN) OnDequeue(now sim.Time, _ int, p *pkt.Packet, _ PortState, v *Verdict) {
	sojourn := p.Sojourn(now)
	if !Decide(sojourn, t.Threshold) {
		return
	}
	if t.oOver != nil {
		t.oOver.Inc()
	}
	if v != nil {
		v.Sojourn = sojourn
		v.ThresholdTime = t.Threshold
	}
	if v.Fire(ReasonTCNThreshold, p) {
		t.Marks++
		if t.oMarks != nil {
			t.oMarks.Inc()
		}
	}
}

// MarkCount implements MarkCounter.
func (t *TCN) MarkCount() int64 { return t.Marks }

// MarkProb implements MarkProber: 1 when the head-of-line sojourn crosses
// the threshold, else 0 (TCN marks deterministically).
func (t *TCN) MarkProb(_ sim.Time, _ int, sojourn sim.Time, _ PortState) float64 {
	if Decide(sojourn, t.Threshold) {
		return 1
	}
	return 0
}

// Decide is the entire TCN data-plane decision: mark iff the sojourn time
// exceeds the threshold. Exposed as a pure function so tests can verify
// statelessness directly.
func Decide(sojourn, threshold sim.Time) bool { return sojourn > threshold }

// ProbTCN is the RED-like probabilistic extension of TCN (§4.3): packets
// with sojourn below Tmin are never marked, above Tmax always marked, and
// in between marked with probability rising linearly to Pmax. Transports
// such as DCQCN that rely on probabilistic marking for fairness use this
// variant; DCTCP and ECN* use plain TCN (Tmin = Tmax).
type ProbTCN struct {
	// Tmin and Tmax bound the probabilistic region.
	Tmin, Tmax sim.Time
	// Pmax is the marking probability as the sojourn approaches Tmax.
	Pmax float64

	rng *sim.Rand

	// Marks counts CE marks applied.
	Marks int64

	oMarks *obs.Counter
}

// Instrument records CE marks into a stats registry under label.
func (t *ProbTCN) Instrument(r *obs.Registry, label string) {
	t.oMarks = r.Counter(label + ".marks")
}

// NewProbTCN returns a probabilistic TCN marker. rng supplies the marking
// coin flips; pass the experiment's seeded source.
func NewProbTCN(tmin, tmax sim.Time, pmax float64, rng *sim.Rand) *ProbTCN {
	switch {
	case tmin <= 0 || tmax < tmin:
		panic(fmt.Sprintf("core: invalid ProbTCN thresholds Tmin=%v Tmax=%v", tmin, tmax))
	case pmax <= 0 || pmax > 1:
		panic(fmt.Sprintf("core: ProbTCN Pmax=%v must be in (0,1]", pmax))
	case rng == nil:
		panic("core: ProbTCN needs a random source")
	}
	return &ProbTCN{Tmin: tmin, Tmax: tmax, Pmax: pmax, rng: rng}
}

// Name implements Marker.
func (t *ProbTCN) Name() string { return "TCN-prob" }

// OnEnqueue implements Marker.
func (t *ProbTCN) OnEnqueue(sim.Time, int, *pkt.Packet, PortState, *Verdict) {}

// OnDequeue implements Marker.
func (t *ProbTCN) OnDequeue(now sim.Time, _ int, p *pkt.Packet, _ PortState, v *Verdict) {
	sojourn := p.Sojourn(now)
	prob := MarkProbability(sojourn, t.Tmin, t.Tmax, t.Pmax)
	if prob <= 0 {
		return
	}
	reason := ReasonTCNProbabilistic
	if prob >= 1 {
		// Above Tmax the ramp saturates: a deterministic TCN mark.
		reason = ReasonTCNThreshold
	}
	if prob >= 1 || t.rng.Float64() < prob {
		if v != nil {
			v.Sojourn = sojourn
			v.ThresholdTime = t.Tmax
			v.Prob = prob
		}
		if v.Fire(reason, p) {
			t.Marks++
			if t.oMarks != nil {
				t.oMarks.Inc()
			}
		}
	}
}

// MarkCount implements MarkCounter.
func (t *ProbTCN) MarkCount() int64 { return t.Marks }

// MarkProb implements MarkProber via the pure ramp function.
func (t *ProbTCN) MarkProb(_ sim.Time, _ int, sojourn sim.Time, _ PortState) float64 {
	return MarkProbability(sojourn, t.Tmin, t.Tmax, t.Pmax)
}

// MarkProbability returns the RED-like marking probability for a sojourn
// time: 0 below tmin, 1 above tmax, and a linear ramp to pmax in between.
// Like Decide, it is a pure function of the packet's own delay.
func MarkProbability(sojourn, tmin, tmax sim.Time, pmax float64) float64 {
	switch {
	case sojourn < tmin:
		return 0
	case sojourn > tmax:
		return 1
	case tmax == tmin:
		// Degenerate single-threshold configuration: behave like
		// plain TCN (sojourn == threshold does not mark).
		return 0
	default:
		return pmax * float64(sojourn-tmin) / float64(tmax-tmin)
	}
}
