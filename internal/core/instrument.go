package core

import (
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// InstrumentMarker wraps m so OnEnqueue/OnDequeue are bracketed by
// enter/exit — the cost profiler's scope push/pop around marking
// decisions. Ports install the wrapper on their hot-path marker
// reference only when a profiler is attached; digests and accessors keep
// the unwrapped marker, so profiling cannot change fingerprint shape
// (the wrapper deliberately does not forward MarkCounter/MarkProber —
// consumers of those read the original through Port.Marker()).
func InstrumentMarker(m Marker, enter, exit func()) Marker {
	return &instrumentedMarker{m: m, enter: enter, exit: exit}
}

type instrumentedMarker struct {
	m     Marker
	enter func()
	exit  func()
}

func (w *instrumentedMarker) Name() string { return w.m.Name() }

func (w *instrumentedMarker) OnEnqueue(now sim.Time, i int, p *pkt.Packet, st PortState, v *Verdict) {
	w.enter()
	w.m.OnEnqueue(now, i, p, st, v)
	w.exit()
}

func (w *instrumentedMarker) OnDequeue(now sim.Time, i int, p *pkt.Packet, st PortState, v *Verdict) {
	w.enter()
	w.m.OnDequeue(now, i, p, st, v)
	w.exit()
}

// Underlying returns the wrapped marker.
func (w *instrumentedMarker) Underlying() Marker { return w.m }
