package core

import (
	"fmt"

	"tcn/internal/obs"
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// HWClock models the switching-chip timestamping scheme from the paper's
// hardware feasibility analysis (§4.2): a 2-byte timestamp with 4 or 8 ns
// resolution attached to each packet at enqueue, and an unsigned 16-bit
// subtraction at dequeue that remains correct across counter wrap-around
// (4 ns × 2^16 ≈ 262 us, 8 ns × 2^16 ≈ 524 us — both above typical
// datacenter RTTs).
type HWClock struct {
	// Resolution is the tick length; the paper discusses 4 ns and 8 ns.
	Resolution sim.Time
}

// NewHWClock returns a clock with the given tick resolution.
func NewHWClock(resolution sim.Time) HWClock {
	if resolution <= 0 {
		panic(fmt.Sprintf("core: clock resolution %v must be positive", resolution))
	}
	return HWClock{Resolution: resolution}
}

// Span returns the longest sojourn the 16-bit counter can represent.
func (c HWClock) Span() sim.Time { return c.Resolution * (1 << 16) }

// Stamp quantizes an absolute time to the chip-local 16-bit counter.
func (c HWClock) Stamp(t sim.Time) uint16 {
	return uint16((t / c.Resolution) & 0xFFFF)
}

// Sojourn reconstructs a sojourn time from enqueue and dequeue stamps. The
// unsigned 16-bit subtraction handles wrap-around for any true sojourn
// shorter than Span, exactly as the integer subtraction the paper proposes
// for the egress pipeline.
func (c HWClock) Sojourn(enq, deq uint16) sim.Time {
	return sim.Time(deq-enq) * c.Resolution
}

// HWTCN is TCN computed with the 16-bit hardware clock instead of the
// simulator's full-precision clock. It exists to demonstrate, executably,
// that the quantized arithmetic of §4.2 yields the same marking behaviour
// (within one tick) as ideal TCN. Sojourns beyond the counter span alias,
// so the configured threshold must be well below Span — trivially true for
// datacenter thresholds (tens to hundreds of microseconds).
type HWTCN struct {
	Clock     HWClock
	Threshold sim.Time

	// Marks counts CE marks applied.
	Marks int64

	oMarks *obs.Counter
}

// Instrument records CE marks into a stats registry under label.
func (t *HWTCN) Instrument(r *obs.Registry, label string) {
	t.oMarks = r.Counter(label + ".marks")
}

// NewHWTCN returns a hardware-arithmetic TCN marker.
func NewHWTCN(clock HWClock, threshold sim.Time) *HWTCN {
	if threshold <= 0 || threshold >= clock.Span() {
		panic(fmt.Sprintf("core: HWTCN threshold %v must be in (0, %v)", threshold, clock.Span()))
	}
	return &HWTCN{Clock: clock, Threshold: threshold}
}

// Name implements Marker.
func (t *HWTCN) Name() string { return "TCN-hw" }

// OnEnqueue implements Marker.
func (t *HWTCN) OnEnqueue(sim.Time, int, *pkt.Packet, PortState, *Verdict) {}

// OnDequeue implements Marker: stamps both ends with the 16-bit clock and
// marks on the reconstructed sojourn.
func (t *HWTCN) OnDequeue(now sim.Time, _ int, p *pkt.Packet, _ PortState, v *Verdict) {
	enq := t.Clock.Stamp(p.EnqueuedAt)
	deq := t.Clock.Stamp(now)
	sojourn := t.Clock.Sojourn(enq, deq)
	if !Decide(sojourn, t.Threshold) {
		return
	}
	if v != nil {
		v.Sojourn = sojourn
		v.ThresholdTime = t.Threshold
	}
	if v.Fire(ReasonTCNThreshold, p) {
		t.Marks++
		if t.oMarks != nil {
			t.oMarks.Inc()
		}
	}
}

// MarkCount implements MarkCounter.
func (t *HWTCN) MarkCount() int64 { return t.Marks }
