package core

import (
	"math"
	"testing"

	"tcn/internal/sim"
)

// FuzzMarkProbability checks the probabilistic-marking math on arbitrary
// configurations: the result is always a valid probability, exactly 0
// below Tmin, exactly 1 above Tmax, and monotone in the sojourn time.
func FuzzMarkProbability(f *testing.F) {
	f.Add(int64(150), int64(100), int64(200), 0.5)
	f.Add(int64(0), int64(0), int64(0), 1.0)
	f.Fuzz(func(t *testing.T, sojournRaw, tminRaw, tmaxRaw int64, pmax float64) {
		norm := func(v int64) sim.Time {
			if v < 0 {
				v = -v
			}
			return sim.Time(v % (1 << 40))
		}
		sojourn, tmin, tmax := norm(sojournRaw), norm(tminRaw), norm(tmaxRaw)
		if tmax < tmin {
			tmin, tmax = tmax, tmin
		}
		if pmax < 0 || pmax > 1 || math.IsNaN(pmax) {
			pmax = 0.5
		}
		p := MarkProbability(sojourn, tmin, tmax, pmax)
		if !(p >= 0 && p <= 1) {
			t.Fatalf("MarkProbability(%v,%v,%v,%v) = %v outside [0,1]", sojourn, tmin, tmax, pmax, p)
		}
		if sojourn < tmin && p != 0 { //tcnlint:floatexact exact-zero contract below Tmin
			t.Fatalf("below Tmin must be 0, got %v", p)
		}
		if sojourn > tmax && p != 1 { //tcnlint:floatexact exact-one contract above Tmax
			t.Fatalf("above Tmax must be 1, got %v", p)
		}
		if sojourn+sim.Microsecond > sojourn {
			p2 := MarkProbability(sojourn+sim.Microsecond, tmin, tmax, pmax)
			if p2 < p {
				t.Fatalf("not monotone: p(%v)=%v > p(%v)=%v", sojourn, p, sojourn+sim.Microsecond, p2)
			}
		}
		// The probabilistic variant must agree with plain TCN at the
		// degenerate Tmin == Tmax configuration.
		if tmin == tmax {
			want := 0.0
			if Decide(sojourn, tmin) {
				want = 1
			}
			if p != want { //tcnlint:floatexact degenerate case returns literal 0 or 1
				t.Fatalf("degenerate config: p=%v, Decide=%v", p, want)
			}
		}
	})
}
