// Package parallel runs independent sweep points concurrently while keeping
// the output byte-identical to a serial run.
//
// Every figure in the paper's evaluation is a sweep over scheme × load ×
// seed, and each point builds its own sim.Engine, *sim.Rand, and transport
// stack from nothing but its configuration — no state crosses points. That
// independence is the entire correctness argument here: Run hands each
// worker disjoint point indices, each point computes exactly what it would
// have computed serially (same seed, same engine, same event order), and
// the results land in a slice indexed by point, so consumers iterate in
// point order and cannot observe scheduling. Determinism therefore does not
// depend on the worker count, only on the points' own purity — which the
// tcnlint goshare analyzer guards by rejecting any code that shares an
// engine, freelist, or rand across goroutines.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the default fan-out width: one worker per
// available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Run evaluates fn(i) for every i in [0, n) using at most workers
// goroutines and returns the results ordered by i. workers <= 1 (or n <= 1)
// runs inline on the caller's goroutine with no synchronization, so the
// serial path stays allocation- and scheduler-free.
//
// fn must be safe to call concurrently for distinct i — in this codebase
// that means each point builds its own engine, rand, and stacks, and shares
// nothing mutable with other points. A panic in any point is re-raised on
// the caller's goroutine after the pool drains.
func Run[T any](workers, n int, fn func(i int) T) []T {
	return RunTracked[T](workers, n, nil, fn)
}

// Tracker observes sweep execution for progress reporting. Implementations
// must be safe for concurrent calls from multiple workers (the perf
// campaign implementation is atomics-only) and must not influence the
// points themselves — tracking is observation, never coordination, so
// attaching a tracker cannot perturb byte-identical results.
type Tracker interface {
	// SweepStart announces the fan-out shape before any point runs.
	SweepStart(workers, points int)
	// CellStart marks worker (0-based) claiming point i.
	CellStart(worker, point int)
	// CellDone marks worker finishing point i.
	CellDone(worker, point int)
}

// RunTracked is Run with an optional Tracker receiving claim/finish
// callbacks around every point. A nil tracker is exactly Run. The serial
// path reports worker 0 for every point.
func RunTracked[T any](workers, n int, tr Tracker, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if tr != nil {
			tr.SweepStart(1, n)
		}
		for i := 0; i < n; i++ {
			if tr != nil {
				tr.CellStart(0, i)
			}
			out[i] = fn(i)
			if tr != nil {
				tr.CellDone(0, i)
			}
		}
		return out
	}

	if tr != nil {
		tr.SweepStart(workers, n)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if tr != nil {
					tr.CellStart(worker, i)
				}
				out[i] = fn(i)
				if tr != nil {
					tr.CellDone(worker, i)
				}
			}
		}(w)
	}
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("parallel: point panicked: %v", panicked))
	}
	return out
}

// DeriveSeed mixes a base seed with a point index into an independent
// stream seed using the SplitMix64 finalizer, so sweep points that need
// distinct randomness get well-separated streams from (base, index) alone —
// deterministically, with no shared generator to sequence through.
func DeriveSeed(base int64, index int) int64 {
	z := uint64(base) + uint64(index+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
