package parallel

import (
	"strings"
	"testing"
)

func square(i int) int { return i * i }

func TestRunOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 8, 100} {
		got := Run(workers, 37, square)
		if len(got) != 37 {
			t.Fatalf("workers=%d: %d results, want 37", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunMatchesSerial(t *testing.T) {
	// A point function with internal state per call but no shared state:
	// parallel output must equal serial output element for element.
	point := func(i int) string {
		var sb strings.Builder
		for j := 0; j <= i%7; j++ {
			sb.WriteByte(byte('a' + j))
		}
		return sb.String()
	}
	serial := Run(1, 100, point)
	parallel := Run(8, 100, point)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("point %d: serial %q != parallel %q", i, serial[i], parallel[i])
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if got := Run(4, 0, square); got != nil {
		t.Fatalf("Run with n=0 returned %v, want nil", got)
	}
}

func TestRunPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic value %v does not carry the point's message", r)
		}
	}()
	Run(4, 16, func(i int) int {
		if i == 7 {
			panic("boom")
		}
		return i
	})
}

func TestDeriveSeed(t *testing.T) {
	seen := make(map[int64]bool)
	for base := int64(0); base < 4; base++ {
		for i := 0; i < 256; i++ {
			s := DeriveSeed(base, i)
			if seen[s] {
				t.Fatalf("collision at base=%d i=%d", base, i)
			}
			seen[s] = true
			if s != DeriveSeed(base, i) {
				t.Fatal("DeriveSeed is not deterministic")
			}
		}
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers = %d", DefaultWorkers())
	}
}
