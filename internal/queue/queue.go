// Package queue implements the switch buffering substrate: per-class FIFO
// packet queues and a multi-queue egress buffer whose memory is shared by
// all queues of a port, admitting packets first-come-first-served until the
// shared capacity is exhausted — the buffer model of the paper's testbed
// (96 KB/port) and simulations (300 KB/port).
package queue

import (
	"fmt"

	"tcn/internal/digest"
	"tcn/internal/invariant"
	"tcn/internal/pkt"
)

// FIFO is a first-in-first-out packet queue backed by a growable ring.
type FIFO struct {
	buf   []*pkt.Packet
	head  int
	n     int
	bytes int
}

// NewFIFO returns an empty queue. The ring capacity starts at 8 and only
// ever doubles, so len(buf) is always a power of two and the ring indices
// reduce with a mask instead of a modulo.
func NewFIFO() *FIFO { return &FIFO{buf: make([]*pkt.Packet, 8)} }

// Len returns the number of queued packets.
func (q *FIFO) Len() int { return q.n }

// Bytes returns the total wire bytes queued.
func (q *FIFO) Bytes() int { return q.bytes }

// Empty reports whether the queue holds no packets.
func (q *FIFO) Empty() bool { return q.n == 0 }

// Head returns the packet at the front without removing it, or nil.
func (q *FIFO) Head() *pkt.Packet {
	if q.n == 0 {
		return nil
	}
	return q.buf[q.head]
}

// Push appends p to the tail.
func (q *FIFO) Push(p *pkt.Packet) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = p
	q.n++
	q.bytes += p.Size
}

// Pop removes and returns the head packet, or nil if empty.
func (q *FIFO) Pop() *pkt.Packet {
	if q.n == 0 {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	q.bytes -= p.Size
	return p
}

func (q *FIFO) grow() {
	nb := make([]*pkt.Packet, 2*len(q.buf))
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = nb
	q.head = 0
}

// Buffer is the egress buffer of one switch port: a set of per-class FIFO
// queues drawing from a shared memory pool. A packet is admitted iff the
// pool has room, regardless of which queue it joins ("completely shared by
// all the queues in a first-in-first-serve basis", §6.1/§6.2). An optional
// per-queue cap models statically partitioned buffers for ablations.
type Buffer struct {
	queues      []*FIFO
	sharedCap   int // bytes; 0 means unlimited
	perQueueCap int // bytes; 0 means unlimited
	used        int

	// Drops counts packets rejected for lack of buffer, per queue.
	Drops []int
	// DroppedBytes counts the bytes of rejected packets, per queue.
	DroppedBytes []int
}

// NewBuffer returns a buffer with n queues sharing sharedCap bytes
// (0 = unlimited) and an optional perQueueCap (0 = unlimited).
func NewBuffer(n, sharedCap, perQueueCap int) *Buffer {
	if n <= 0 {
		panic(fmt.Sprintf("queue: buffer needs at least one queue, got %d", n))
	}
	b := &Buffer{
		queues:       make([]*FIFO, n),
		sharedCap:    sharedCap,
		perQueueCap:  perQueueCap,
		Drops:        make([]int, n),
		DroppedBytes: make([]int, n),
	}
	for i := range b.queues {
		b.queues[i] = NewFIFO()
	}
	return b
}

// NumQueues returns the number of per-class queues.
func (b *Buffer) NumQueues() int { return len(b.queues) }

// Len returns the packet count of queue i.
func (b *Buffer) Len(i int) int { return b.queues[i].Len() }

// Bytes returns the queued bytes of queue i.
func (b *Buffer) Bytes(i int) int { return b.queues[i].Bytes() }

// Used returns the total bytes buffered across all queues of the port.
func (b *Buffer) Used() int { return b.used }

// SharedCap returns the shared pool size in bytes (0 = unlimited).
func (b *Buffer) SharedCap() int { return b.sharedCap }

// Head returns the head packet of queue i, or nil.
func (b *Buffer) Head(i int) *pkt.Packet { return b.queues[i].Head() }

// Admit reports whether a packet of the given size destined for queue i
// would be accepted right now.
func (b *Buffer) Admit(i, size int) bool {
	if b.sharedCap > 0 && b.used+size > b.sharedCap {
		return false
	}
	if b.perQueueCap > 0 && b.queues[i].Bytes()+size > b.perQueueCap {
		return false
	}
	return true
}

// Push enqueues p onto queue i if the buffer admits it, and reports whether
// the packet was accepted. On rejection the drop counters are updated and
// the caller owns the packet.
func (b *Buffer) Push(i int, p *pkt.Packet) bool {
	if !b.Admit(i, p.Size) {
		b.Drops[i]++
		b.DroppedBytes[i] += p.Size
		return false
	}
	b.queues[i].Push(p)
	b.used += p.Size
	if invariant.Enabled {
		b.checkAccounting()
	}
	return true
}

// Pop dequeues the head packet of queue i, or nil.
func (b *Buffer) Pop(i int) *pkt.Packet {
	p := b.queues[i].Pop()
	if p != nil {
		b.used -= p.Size
	}
	if invariant.Enabled {
		b.checkAccounting()
	}
	return p
}

// TotalDrops sums the per-queue drop counters.
func (b *Buffer) TotalDrops() int {
	t := 0
	for _, d := range b.Drops {
		t += d
	}
	return t
}

// Empty reports whether every queue is empty.
func (b *Buffer) Empty() bool { return b.used == 0 && b.totalLen() == 0 }

func (b *Buffer) totalLen() int {
	n := 0
	for _, q := range b.queues {
		n += q.Len()
	}
	return n
}

// DigestState folds the buffer occupancy into a run fingerprint: the
// shared-pool counter, every queue's packet and byte counts, and the drop
// tallies. Packet contents are not digested — occupancy plus the drop
// history pins the buffer's externally observable state, and the engine
// digest already covers the in-flight event timing.
func (b *Buffer) DigestState(h *digest.Hash) {
	h.WriteInt(b.used)
	h.WriteInt(len(b.queues))
	for _, q := range b.queues {
		h.WriteInt(q.Len())
		h.WriteInt(q.Bytes())
	}
	for i := range b.Drops {
		h.WriteInt(b.Drops[i])
		h.WriteInt(b.DroppedBytes[i])
	}
}

// checkAccounting asserts the shared-pool identities after every
// mutation (invariants builds only): the pool counter equals the sum of
// the per-queue byte counts, never goes negative, and never exceeds the
// configured shared capacity.
func (b *Buffer) checkAccounting() {
	sum := 0
	for _, q := range b.queues {
		sum += q.Bytes()
		invariant.Checkf(q.Bytes() >= 0, "queue: negative per-queue bytes %d", q.Bytes())
		invariant.Checkf(q.Len() >= 0, "queue: negative per-queue length %d", q.Len())
	}
	invariant.Checkf(b.used == sum,
		"queue: shared pool counter %d != sum of queue bytes %d", b.used, sum)
	invariant.Checkf(b.used >= 0, "queue: negative pool usage %d", b.used)
	invariant.Checkf(b.sharedCap == 0 || b.used <= b.sharedCap,
		"queue: pool usage %d exceeds shared cap %d", b.used, b.sharedCap)
}
