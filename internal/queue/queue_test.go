package queue

import (
	"testing"
	"testing/quick"

	"tcn/internal/pkt"
)

func mkpkt(size int) *pkt.Packet { return &pkt.Packet{Size: size} }

func TestFIFOOrder(t *testing.T) {
	q := NewFIFO()
	for i := 0; i < 100; i++ {
		q.Push(&pkt.Packet{Seq: int64(i), Size: 100})
	}
	if q.Len() != 100 || q.Bytes() != 100*100 {
		t.Fatalf("len=%d bytes=%d", q.Len(), q.Bytes())
	}
	for i := 0; i < 100; i++ {
		p := q.Pop()
		if p == nil || p.Seq != int64(i) {
			t.Fatalf("pop %d returned %v", i, p)
		}
	}
	if !q.Empty() || q.Pop() != nil {
		t.Fatal("queue should be empty")
	}
}

func TestFIFOInterleavedWrap(t *testing.T) {
	// Exercise the ring wrap: pushes and pops interleaved across the
	// initial capacity boundary.
	q := NewFIFO()
	next, expect := int64(0), int64(0)
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			q.Push(&pkt.Packet{Seq: next, Size: 1})
			next++
		}
		for i := 0; i < 2; i++ {
			p := q.Pop()
			if p.Seq != expect {
				t.Fatalf("round %d: got seq %d, want %d", round, p.Seq, expect)
			}
			expect++
		}
	}
	for !q.Empty() {
		if p := q.Pop(); p.Seq != expect {
			t.Fatalf("drain: got %d, want %d", p.Seq, expect)
		} else {
			expect++
		}
	}
	if expect != next {
		t.Fatalf("drained %d packets, pushed %d", expect, next)
	}
}

func TestFIFOHead(t *testing.T) {
	q := NewFIFO()
	if q.Head() != nil {
		t.Fatal("empty head should be nil")
	}
	q.Push(&pkt.Packet{Seq: 7, Size: 10})
	q.Push(&pkt.Packet{Seq: 8, Size: 10})
	if q.Head().Seq != 7 {
		t.Fatal("head should be first pushed")
	}
	q.Pop()
	if q.Head().Seq != 8 {
		t.Fatal("head should advance")
	}
}

func TestBufferSharedCapacity(t *testing.T) {
	b := NewBuffer(2, 1000, 0)
	if !b.Push(0, mkpkt(600)) {
		t.Fatal("first push should fit")
	}
	// Queue 1 is empty but the shared pool is nearly full: a 600-byte
	// packet must be rejected regardless of target queue.
	if b.Push(1, mkpkt(600)) {
		t.Fatal("push should exceed shared capacity")
	}
	if b.Drops[1] != 1 || b.DroppedBytes[1] != 600 {
		t.Fatalf("drop accounting: %v %v", b.Drops, b.DroppedBytes)
	}
	if !b.Push(1, mkpkt(400)) {
		t.Fatal("exact fit should be admitted")
	}
	if b.Used() != 1000 {
		t.Fatalf("used = %d, want 1000", b.Used())
	}
}

func TestBufferPerQueueCap(t *testing.T) {
	b := NewBuffer(2, 0, 500)
	if !b.Push(0, mkpkt(400)) || b.Push(0, mkpkt(200)) {
		t.Fatal("per-queue cap not enforced")
	}
	if !b.Push(1, mkpkt(400)) {
		t.Fatal("other queue should have its own cap")
	}
}

func TestBufferUnlimited(t *testing.T) {
	b := NewBuffer(1, 0, 0)
	for i := 0; i < 10000; i++ {
		if !b.Push(0, mkpkt(1500)) {
			t.Fatal("unlimited buffer rejected a packet")
		}
	}
	if b.TotalDrops() != 0 {
		t.Fatal("unexpected drops")
	}
}

func TestBufferPopAccounting(t *testing.T) {
	b := NewBuffer(3, 10_000, 0)
	b.Push(1, mkpkt(1000))
	b.Push(2, mkpkt(2000))
	if b.Used() != 3000 || b.Bytes(1) != 1000 || b.Bytes(2) != 2000 {
		t.Fatal("byte accounting wrong after push")
	}
	p := b.Pop(2)
	if p == nil || p.Size != 2000 {
		t.Fatal("pop returned wrong packet")
	}
	if b.Used() != 1000 || b.Bytes(2) != 0 {
		t.Fatal("byte accounting wrong after pop")
	}
	if b.Pop(0) != nil {
		t.Fatal("pop from empty queue should be nil")
	}
}

func TestBufferHeadAndLen(t *testing.T) {
	b := NewBuffer(2, 0, 0)
	b.Push(0, &pkt.Packet{Seq: 1, Size: 10})
	b.Push(0, &pkt.Packet{Seq: 2, Size: 10})
	if b.Head(0).Seq != 1 || b.Len(0) != 2 || b.Len(1) != 0 {
		t.Fatal("head/len wrong")
	}
	if b.Head(1) != nil {
		t.Fatal("empty queue head should be nil")
	}
}

func TestBufferAdmit(t *testing.T) {
	b := NewBuffer(1, 100, 0)
	if !b.Admit(0, 100) || b.Admit(0, 101) {
		t.Fatal("Admit boundary wrong")
	}
}

// Property: under any random push/pop sequence, Used() equals the sum of
// live packet sizes and never exceeds the shared capacity.
func TestPropertyBufferAccounting(t *testing.T) {
	f := func(ops []uint8) bool {
		const cap = 5000
		b := NewBuffer(4, cap, 0)
		live := 0
		for _, op := range ops {
			qi := int(op % 4)
			size := 64 + int(op)*7
			if op%3 == 0 {
				if p := b.Pop(qi); p != nil {
					live -= p.Size
				}
			} else {
				if b.Push(qi, mkpkt(size)) {
					live += size
				}
			}
			if b.Used() != live || b.Used() > cap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBufferPanicsOnZeroQueues(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuffer(0, 0, 0)
}
