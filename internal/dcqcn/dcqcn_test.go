package dcqcn_test

import (
	"testing"

	"tcn/internal/core"
	"tcn/internal/dcqcn"
	"tcn/internal/fabric"
	"tcn/internal/metrics"
	"tcn/internal/pkt"
	"tcn/internal/sim"
	"tcn/internal/testutil"
)

// lossless builds an n-host 10 Gbps star with unbounded buffers (the PFC
// stand-in) guarded by the given marker.
func lossless(eng *sim.Engine, n int, marker func() core.Marker) *fabric.Star {
	return fabric.NewStar(eng, fabric.StarConfig{
		Hosts:     n,
		Rate:      10 * fabric.Gbps,
		Prop:      sim.Microsecond,
		HostDelay: 5 * sim.Microsecond,
		SwitchPort: func() fabric.PortConfig {
			var m core.Marker
			if marker != nil {
				m = marker()
			}
			return fabric.PortConfig{Queues: 1, Marker: m}
		},
	})
}

func TestSingleSenderRunsAtLineRate(t *testing.T) {
	eng := sim.NewEngine()
	net := lossless(eng, 2, nil)
	st := dcqcn.NewStack(eng, dcqcn.Config{}, net.Hosts)
	var got int64
	st.OnDeliver = func(_ sim.Time, _ pkt.FlowID, n int) { got += int64(n) }
	snd := st.Start(0, 1, 0)
	eng.RunUntil(50 * sim.Millisecond)
	snd.Stop()

	gbps := float64(got) * 8 / 0.05 / 1e9
	if gbps < 9 {
		t.Fatalf("uncongested DCQCN delivered %.2f Gbps, want ~9.7", gbps)
	}
	if snd.CNPs != 0 {
		t.Fatalf("unexpected CNPs on an idle path: %d", snd.CNPs)
	}
	if snd.Rate() != 10*fabric.Gbps {
		t.Fatalf("rate %v should remain at line rate", snd.Rate())
	}
}

func TestCNPReducesRate(t *testing.T) {
	// Two senders into one port with an aggressive marker: CNPs must
	// arrive and rates must leave line rate.
	eng := sim.NewEngine()
	net := lossless(eng, 3, func() core.Marker { return core.NewTCN(20 * sim.Microsecond) })
	st := dcqcn.NewStack(eng, dcqcn.Config{}, net.Hosts)
	a := st.Start(0, 2, 0)
	b := st.Start(1, 2, 0)
	eng.RunUntil(20 * sim.Millisecond)

	if a.CNPs == 0 && b.CNPs == 0 {
		t.Fatal("no CNPs despite congestion")
	}
	if a.Rate()+b.Rate() > 11*fabric.Gbps {
		t.Fatalf("aggregate rate %v exceeds the link", a.Rate()+b.Rate())
	}
	if testutil.Eq(a.Alpha(), 0) && testutil.Eq(b.Alpha(), 0) {
		t.Fatal("alpha never grew")
	}
}

func TestRatesConvergeNearFairShare(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRand(3)
	net := lossless(eng, 5, func() core.Marker {
		return core.NewProbTCN(30*sim.Microsecond, 300*sim.Microsecond, 0.01, rng)
	})
	st := dcqcn.NewStack(eng, dcqcn.Config{}, net.Hosts)
	// Measure the steady state: DCQCN recovers from the synchronized-
	// start transient by additive increase (40 Mbps per 1.5 ms), so
	// skip the first 150 ms.
	const warmup = 150 * sim.Millisecond
	const measure = 200 * sim.Millisecond
	delivered := map[pkt.FlowID]float64{}
	st.OnDeliver = func(now sim.Time, f pkt.FlowID, n int) {
		if now >= warmup {
			delivered[f] += float64(n)
		}
	}
	for src := 0; src < 4; src++ {
		st.Start(src, 4, 0)
	}
	eng.RunUntil(warmup + measure)

	sum, _ := metrics.SumAndSumSq(delivered)
	jain := metrics.JainFairness(delivered, 4)
	if jain < 0.9 {
		t.Fatalf("Jain index %.3f under probabilistic marking, want > 0.9", jain)
	}
	gbps := sum * 8 / measure.Seconds() / 1e9
	if gbps < 7.5 {
		t.Fatalf("steady aggregate %.2f Gbps, want near 10", gbps)
	}
}

func TestQueueBoundedUnderMarking(t *testing.T) {
	eng := sim.NewEngine()
	net := lossless(eng, 5, func() core.Marker { return core.NewTCN(60 * sim.Microsecond) })
	st := dcqcn.NewStack(eng, dcqcn.Config{}, net.Hosts)
	for src := 0; src < 4; src++ {
		st.Start(src, 4, 0)
	}
	port := net.Switch.Port(4)
	maxQ := 0
	var poll func()
	poll = func() {
		if q := port.PortBytes(); q > maxQ {
			maxQ = q
		}
		eng.After(20*sim.Microsecond, poll)
	}
	eng.After(20*sim.Millisecond, poll) // skip the initial 4×line-rate transient
	eng.RunUntil(200 * sim.Millisecond)

	// Without marking the queue would grow without bound (rate senders,
	// lossless fabric). With TCN it must stay within a small multiple
	// of the threshold's worth of data (60us × 10Gbps = 75 KB).
	if maxQ > 8*75_000 {
		t.Fatalf("steady-state queue %d bytes not bounded by marking", maxQ)
	}
}

func TestAlphaDecaysWithoutCongestion(t *testing.T) {
	eng := sim.NewEngine()
	net := lossless(eng, 3, func() core.Marker { return core.NewTCN(20 * sim.Microsecond) })
	st := dcqcn.NewStack(eng, dcqcn.Config{}, net.Hosts)
	a := st.Start(0, 2, 0)
	b := st.Start(1, 2, 0)
	eng.RunUntil(20 * sim.Millisecond)
	alphaCongested := a.Alpha()
	if testutil.Eq(alphaCongested, 0) {
		t.Fatal("alpha should have grown under congestion")
	}
	// Remove the competitor: congestion ends, alpha must decay and the
	// survivor must climb back toward line rate.
	b.Stop()
	// Recovery is additive (40 Mbps / 1.5 ms; hyper-increase is not
	// modeled), so give it time to climb back.
	eng.RunUntil(500 * sim.Millisecond)
	if a.Alpha() > alphaCongested/4 {
		t.Fatalf("alpha %.4f did not decay from %.4f", a.Alpha(), alphaCongested)
	}
	if a.Rate() < 8*fabric.Gbps {
		t.Fatalf("rate %v did not recover after congestion ended", a.Rate())
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (dcqcn.Config{}).Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := dcqcn.Config{MinRate: 20 * fabric.Gbps, LineRate: 10 * fabric.Gbps}
	if bad.Validate() == nil {
		t.Fatal("min above line rate should fail")
	}
	if (dcqcn.Config{G: 2}).Validate() == nil {
		t.Fatal("g out of range should fail")
	}
}
