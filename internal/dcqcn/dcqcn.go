// Package dcqcn implements a simplified DCQCN (Zhu et al., SIGCOMM 2015),
// the rate-based RDMA congestion control the paper names as a target for
// probabilistic TCN marking (§4.3): unlike DCTCP, DCQCN reacts to *every*
// congestion notification packet (CNP) rather than to a per-window echo,
// so single-threshold cut-off marking synchronizes and starves senders —
// the reason RED-like probabilistic marking (and hence ProbTCN) exists.
//
// The model follows the published algorithm:
//
//   - NP (notification point, the receiver) sends at most one CNP per
//     CNPInterval when CE-marked packets arrive.
//   - RP (reaction point, the sender) on CNP: Rt ← Rc, Rc ← Rc(1−α/2),
//     α ← (1−g)α + g. α decays by (1−g) every AlphaTimer without CNPs.
//   - Rate recovery alternates byte-counter and timer stage events:
//     the first FastRecoverySteps halve toward Rt (Rc ← (Rt+Rc)/2), then
//     additive increase raises Rt by RateAI before each averaging step.
//
// RoCE deployments pair DCQCN with PFC so the fabric is lossless; the
// experiments here use unbounded switch buffers to model that, and the
// senders perform no retransmission.
package dcqcn

import (
	"fmt"

	"tcn/internal/fabric"
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// Config carries the DCQCN parameters (defaults follow the paper).
type Config struct {
	// LineRate is the NIC speed senders start at and are capped to.
	LineRate fabric.Rate
	// MinRate floors the sending rate.
	MinRate fabric.Rate
	// MTUBytes is the message segment size.
	MTUBytes int
	// G is the alpha gain (paper: 1/256).
	G float64
	// AlphaTimer is the alpha-decay period without CNPs (paper: 55 us).
	AlphaTimer sim.Time
	// CNPInterval rate-limits NP-generated CNPs per flow (paper: 50 us).
	CNPInterval sim.Time
	// IncreaseTimer drives timer-based rate increase (paper: 1.5 ms).
	IncreaseTimer sim.Time
	// IncreaseBytes drives byte-counter-based rate increase (paper:
	// 10 MB).
	IncreaseBytes int64
	// FastRecoverySteps is the number of averaging-only stages before
	// additive increase starts (paper: 5).
	FastRecoverySteps int
	// RateAI is the additive increase step (paper: 40 Mbps).
	RateAI fabric.Rate
}

// withDefaults fills unset fields with the paper's values.
func (c Config) withDefaults() Config {
	if c.LineRate == 0 {
		c.LineRate = 10 * fabric.Gbps
	}
	if c.MinRate == 0 {
		c.MinRate = 10 * fabric.Mbps
	}
	if c.MTUBytes == 0 {
		c.MTUBytes = 1500
	}
	if c.G == 0 { //tcnlint:floatexact zero is the "unset" sentinel, never computed
		c.G = 1.0 / 256
	}
	if c.AlphaTimer == 0 {
		c.AlphaTimer = 55 * sim.Microsecond
	}
	if c.CNPInterval == 0 {
		c.CNPInterval = 50 * sim.Microsecond
	}
	if c.IncreaseTimer == 0 {
		c.IncreaseTimer = 1500 * sim.Microsecond
	}
	if c.IncreaseBytes == 0 {
		c.IncreaseBytes = 10 << 20
	}
	if c.FastRecoverySteps == 0 {
		c.FastRecoverySteps = 5
	}
	if c.RateAI == 0 {
		c.RateAI = 40 * fabric.Mbps
	}
	return c
}

// Stack manages DCQCN flows over a fabric, dispatching data to NPs and
// CNPs back to RPs.
type Stack struct {
	eng   *sim.Engine
	cfg   Config
	hosts []*fabric.Host

	senders   map[pkt.FlowID]*Sender
	notifiers map[pkt.FlowID]*notifier
	nextID    pkt.FlowID

	// OnDeliver observes delivered payload bytes per flow.
	OnDeliver func(now sim.Time, f pkt.FlowID, bytes int)

	// pool recycles packets along this stack's path; deliver returns each
	// packet once its handler has consumed it. Engine-local, never shared
	// across goroutines.
	pool pkt.Pool
}

// NewStack wires a DCQCN stack onto hosts, installing itself as their
// packet handler.
func NewStack(eng *sim.Engine, cfg Config, hosts []*fabric.Host) *Stack {
	s := &Stack{
		eng:       eng,
		cfg:       cfg.withDefaults(),
		hosts:     hosts,
		senders:   make(map[pkt.FlowID]*Sender),
		notifiers: make(map[pkt.FlowID]*notifier),
	}
	for _, h := range hosts {
		h.Handler = s.deliver
	}
	return s
}

// Config returns the effective configuration.
func (s *Stack) Config() Config { return s.cfg }

// Pool exposes the stack's packet pool for self-telemetry reporting.
func (s *Stack) Pool() *pkt.Pool { return &s.pool }

// Start opens an endless DCQCN stream from src to dst in the given
// service class and returns its sender.
func (s *Stack) Start(src, dst int, class uint8) *Sender {
	id := s.nextID
	s.nextID++
	snd := newSender(s, id, src, dst, class)
	s.senders[id] = snd
	s.notifiers[id] = &notifier{stack: s}
	snd.schedule()
	return snd
}

func (s *Stack) deliver(p *pkt.Packet) {
	switch p.Kind {
	case pkt.Data:
		if np := s.notifiers[p.Flow]; np != nil {
			np.onData(p)
		}
		if s.OnDeliver != nil {
			s.OnDeliver(s.eng.Now(), p.Flow, p.Len)
		}
	case pkt.Ack: // CNPs travel as header-only ACK-kind packets with ECE set
		if p.ECE {
			if snd := s.senders[p.Flow]; snd != nil {
				snd.onCNP()
			}
		}
	}
	s.pool.Put(p)
}

// Sender is the DCQCN reaction point.
type Sender struct {
	stack *Stack
	id    pkt.FlowID
	src   int
	dst   int
	class uint8

	rc, rt fabric.Rate // current and target rate
	alpha  float64

	stageByteCount int64
	byteStages     int
	timerStages    int

	alphaTimer    sim.EventRef
	increaseTimer sim.EventRef
	stopped       bool

	// Stored callbacks: pacing, alpha decay, and timer-stage ticks rearm
	// themselves constantly, so each is created once per sender.
	scheduleFn func()
	decayFn    func()
	tickFn     func()

	// CNPs counts received congestion notifications.
	CNPs int
	// SentBytes counts transmitted payload.
	SentBytes int64
}

func newSender(s *Stack, id pkt.FlowID, src, dst int, class uint8) *Sender {
	snd := &Sender{
		stack: s,
		id:    id,
		src:   src,
		dst:   dst,
		class: class,
		rc:    s.cfg.LineRate,
		rt:    s.cfg.LineRate,
	}
	snd.scheduleFn = snd.schedule
	snd.decayFn = func() {
		snd.alpha *= 1 - snd.stack.cfg.G
		if snd.alpha > 1e-6 && !snd.stopped {
			snd.alphaTimer = snd.stack.eng.After(snd.stack.cfg.AlphaTimer, snd.decayFn)
		}
	}
	snd.tickFn = func() {
		if snd.stopped {
			return
		}
		snd.timerStages++
		snd.increase()
		snd.increaseTimer = snd.stack.eng.After(snd.stack.cfg.IncreaseTimer, snd.tickFn)
	}
	snd.armIncrease()
	return snd
}

// Rate returns the current sending rate.
func (snd *Sender) Rate() fabric.Rate { return snd.rc }

// Alpha returns the congestion estimate.
func (snd *Sender) Alpha() float64 { return snd.alpha }

// Stop ends the stream.
func (snd *Sender) Stop() {
	snd.stopped = true
	snd.stack.eng.Cancel(snd.alphaTimer)
	snd.stack.eng.Cancel(snd.increaseTimer)
}

// schedule emits the next paced segment.
func (snd *Sender) schedule() {
	if snd.stopped {
		return
	}
	size := snd.stack.cfg.MTUBytes
	p := snd.stack.pool.Get()
	*p = pkt.Packet{
		Flow:   snd.id,
		Src:    snd.src,
		Dst:    snd.dst,
		Kind:   pkt.Data,
		Len:    size - pkt.HeaderSize,
		Size:   size,
		ECN:    pkt.ECT0,
		DSCP:   snd.class,
		SentAt: snd.stack.eng.Now(),
	}
	snd.stack.hosts[snd.src].Send(p)
	snd.SentBytes += int64(size - pkt.HeaderSize)
	snd.onBytes(int64(size))
	gap := snd.rc.Serialize(size)
	snd.stack.eng.After(gap, snd.scheduleFn)
}

// onCNP applies the multiplicative decrease and restarts recovery.
func (snd *Sender) onCNP() {
	snd.CNPs++
	cfg := snd.stack.cfg
	snd.rt = snd.rc
	snd.rc = fabric.Rate(float64(snd.rc) * (1 - snd.alpha/2))
	if snd.rc < cfg.MinRate {
		snd.rc = cfg.MinRate
	}
	snd.alpha = (1-cfg.G)*snd.alpha + cfg.G
	snd.byteStages, snd.timerStages = 0, 0
	snd.stageByteCount = 0
	snd.armAlphaDecay()
	snd.armIncrease()
}

// armAlphaDecay restarts the no-CNP alpha decay timer.
func (snd *Sender) armAlphaDecay() {
	snd.stack.eng.Cancel(snd.alphaTimer)
	snd.alphaTimer = snd.stack.eng.After(snd.stack.cfg.AlphaTimer, snd.decayFn)
}

// onBytes advances the byte-counter stage machine.
func (snd *Sender) onBytes(n int64) {
	snd.stageByteCount += n
	if snd.stageByteCount >= snd.stack.cfg.IncreaseBytes {
		snd.stageByteCount = 0
		snd.byteStages++
		snd.increase()
	}
}

// armIncrease restarts the timer stage machine.
func (snd *Sender) armIncrease() {
	snd.stack.eng.Cancel(snd.increaseTimer)
	snd.increaseTimer = snd.stack.eng.After(snd.stack.cfg.IncreaseTimer, snd.tickFn)
}

// increase performs one recovery/increase step: fast recovery averages
// toward the target; past FastRecoverySteps the target itself grows.
func (snd *Sender) increase() {
	cfg := snd.stack.cfg
	stage := snd.byteStages
	if snd.timerStages > stage {
		stage = snd.timerStages
	}
	if stage > cfg.FastRecoverySteps {
		snd.rt += cfg.RateAI
		if snd.rt > cfg.LineRate {
			snd.rt = cfg.LineRate
		}
	}
	snd.rc = (snd.rc + snd.rt) / 2
	if snd.rc > cfg.LineRate {
		snd.rc = cfg.LineRate
	}
}

// notifier is the DCQCN notification point: one CNP per CNPInterval while
// CE-marked traffic keeps arriving.
type notifier struct {
	stack   *Stack
	lastCNP sim.Time
}

func (np *notifier) onData(p *pkt.Packet) {
	if p.ECN != pkt.CE {
		return
	}
	now := np.stack.eng.Now()
	if np.lastCNP != 0 && now-np.lastCNP < np.stack.cfg.CNPInterval {
		return
	}
	np.lastCNP = now
	cnp := np.stack.pool.Get()
	*cnp = pkt.Packet{
		Flow:   p.Flow,
		Src:    p.Dst,
		Dst:    p.Src,
		Kind:   pkt.Ack,
		ECE:    true,
		Size:   pkt.AckSize,
		DSCP:   0, // CNPs ride the highest priority, as operators configure (§2.2)
		SentAt: now,
	}
	np.stack.hosts[p.Dst].Send(cnp)
}

// Validate sanity-checks a config.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.MinRate > c.LineRate {
		return fmt.Errorf("dcqcn: min rate %v above line rate %v", c.MinRate, c.LineRate)
	}
	if c.G <= 0 || c.G >= 1 {
		return fmt.Errorf("dcqcn: gain g=%v must be in (0,1)", c.G)
	}
	return nil
}
