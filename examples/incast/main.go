// Incast: the burst-tolerance ablation behind §4.3's "faster reaction to
// bursty traffic". Long-lived background flows keep the bottleneck busy;
// every 50 ms a partition/aggregate burst of synchronized small responses
// arrives. How much of the 96 KB shared buffer the burst finds free is
// decided by the marking scheme's standing queue: per-queue RED with the
// standard threshold parks ~32 KB in the buffer, CoDel reacts only after
// a full interval, and TCN's instantaneous sojourn marking keeps the
// queue shortest — so burst flows see the fewest drops and timeouts.
//
// Run with: go run ./examples/incast [-senders N] [-resp BYTES]
package main

import (
	"flag"
	"fmt"

	"tcn/internal/aqm"
	"tcn/internal/core"
	"tcn/internal/fabric"
	"tcn/internal/sched"
	"tcn/internal/sim"
	"tcn/internal/transport"
)

func main() {
	senders := flag.Int("senders", 24, "hosts: 4 background + the rest burst")
	resp := flag.Int64("resp", 4_000, "burst response size in bytes")
	rounds := flag.Int("rounds", 20, "incast rounds")
	flag.Parse()

	run := func(name string, marker func() core.Marker) {
		eng := sim.NewEngine()
		net := fabric.NewStar(eng, fabric.StarConfig{
			Hosts:     *senders + 1,
			Rate:      fabric.Gbps,
			Prop:      2500 * sim.Nanosecond,
			HostDelay: 120 * sim.Microsecond,
			SwitchPort: func() fabric.PortConfig {
				return fabric.PortConfig{
					Queues:      4,
					BufferBytes: 96_000,
					Scheduler:   sched.NewDWRREqual(4, 1500),
					Marker:      marker(),
				}
			},
		})
		st := transport.NewStack(eng, transport.Config{
			CC:         transport.DCTCP,
			RTOMin:     10 * sim.Millisecond,
			InitWindow: 10,
		}, net.Hosts)

		recv := *senders
		var fcts []sim.Time
		var bgBytes int64
		burstTimeouts := 0
		st.OnDeliver = func(_ sim.Time, f *transport.Flow, n int) {
			if f.Size != *resp {
				bgBytes += int64(n)
			}
		}
		st.OnDone = func(f *transport.Flow) {
			if f.Size == *resp { // burst flows only
				fcts = append(fcts, f.FCT())
				burstTimeouts += f.Timeouts
			}
		}

		// Background: one long-lived flow per service queue. This is
		// where the schemes diverge: per-queue RED lets *each* queue
		// grow to the 32 KB standard threshold (4×32 KB > the 96 KB
		// pool, Remark 1), while TCN holds each at its capacity share
		// (~8 KB at a quarter of the link).
		for s := 0; s < 4; s++ {
			st.Start(&transport.Flow{ID: st.NewFlowID(), Src: s, Dst: recv, Size: 1 << 40, Class: uint8(s)})
		}
		// Bursts: the remaining senders fire responses together every
		// 50 ms once the background has converged.
		burstSenders := *senders - 4
		for r := 0; r < *rounds; r++ {
			at := 100*sim.Millisecond + sim.Time(r)*50*sim.Millisecond
			for s := 4; s < *senders; s++ {
				f := &transport.Flow{ID: st.NewFlowID(), Src: s, Dst: recv, Size: *resp, Class: uint8(s % 4)}
				f.Tag = transport.StaticTag(f.Class)
				st.StartAt(at, f)
			}
		}
		eng.RunUntil(sim.Time(*rounds+10)*50*sim.Millisecond + 100*sim.Millisecond)

		var sum, worst sim.Time
		for _, f := range fcts {
			sum += f
			if f > worst {
				worst = f
			}
		}
		n := len(fcts)
		if n == 0 {
			n = 1
		}
		drops := net.Switch.Port(recv).Buffer().TotalDrops()
		dur := eng.Now().Seconds()
		fmt.Printf("%-6s completed %d/%d  avg FCT %-9v worst %-9v burst timeouts %-4d drops %-5d bg goodput %.0f Mbps\n",
			name, len(fcts), burstSenders**rounds, sum/sim.Time(n), worst, burstTimeouts, drops,
			float64(bgBytes)*8/dur/1e6)
	}

	fmt.Printf("incast: 4 background flows + %d×%dB bursts, %d rounds, 96KB shared buffer\n\n",
		*senders-4, *resp, *rounds)
	run("TCN", func() core.Marker { return core.NewTCN(256 * sim.Microsecond) })
	// CoDel with the paper's testbed tuning (target 51.2us, interval
	// 1024us): its windowed minimum cannot mark before a full interval
	// has elapsed, too slow for a sub-millisecond incast burst.
	run("CoDel", func() core.Marker {
		return aqm.NewCoDel(4, sim.Time(51200), 1024*sim.Microsecond)
	})
	run("RED", func() core.Marker { return aqm.NewQueueRED(32_000) })
	fmt.Println(`
with four busy queues, RED's per-queue standard threshold oversubscribes the
shared pool and the bursts find no headroom (Remark 1). Both sojourn-time
schemes keep queues short in this *static* scenario — matching §6.1.1 where
CoDel's latency is comparable — while CoDel's weaknesses (slow reaction once
workloads become dynamic, and per-queue state + sqrt in hardware) show up in
the Figure 8/9 tail-latency sweeps and in §4.2, not here.`)
}
