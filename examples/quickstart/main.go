// Quickstart: assemble the paper's qdisc pipeline (§5) around a TCN
// marker, push a traffic burst through it, and watch which packets get
// CE-marked.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"tcn/internal/core"
	"tcn/internal/fabric"
	"tcn/internal/pkt"
	"tcn/internal/qdisc"
	"tcn/internal/sched"
	"tcn/internal/sim"
)

func main() {
	eng := sim.NewEngine()

	// A 1 Gbps egress with two DWRR service queues guarded by TCN with
	// the standard threshold RTT×λ = 256 us (the paper's testbed value
	// for a 250 us base RTT).
	tcn := core.NewTCN(256 * sim.Microsecond)
	var sent, marked int
	q := qdisc.New(eng, qdisc.Config{
		Queues:    2,
		LineRate:  fabric.Gbps,
		Scheduler: sched.NewDWRREqual(2, 1500),
		Marker:    tcn,
		Transmit: func(now sim.Time, p *pkt.Packet) {
			sent++
			if p.ECN == pkt.CE {
				marked++
			}
		},
	})

	// Service 0 sends a steady trickle; service 1 dumps a 120 KB burst
	// at t=1ms. Only packets whose own sojourn exceeds the threshold
	// are marked — no per-queue thresholds to configure, no drain-rate
	// estimation, any scheduler.
	for i := 0; i < 200; i++ {
		at := sim.Time(i) * 50 * sim.Microsecond
		eng.At(at, func() {
			q.Enqueue(&pkt.Packet{Size: 1500, ECN: pkt.ECT0, DSCP: 0})
		})
	}
	eng.At(sim.Millisecond, func() {
		for i := 0; i < 80; i++ {
			q.Enqueue(&pkt.Packet{Size: 1500, ECN: pkt.ECT0, DSCP: 1})
		}
	})

	eng.Run()

	fmt.Printf("transmitted %d packets, CE-marked %d (%.0f%%)\n",
		sent, marked, 100*float64(marked)/float64(sent))
	fmt.Printf("TCN threshold %v; marks recorded by the marker: %d\n",
		tcn.Threshold, tcn.Marks)
	fmt.Println("the steady service-0 trickle passes unmarked; only the")
	fmt.Println("burst's tail, which waited longer than RTT×λ, was marked.")
}
