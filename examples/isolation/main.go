// Isolation: a miniature of the paper's inter-service traffic isolation
// experiment (§6.1.2, Figures 6-7). Eight servers stream web-search flows
// to one client over four DWRR service queues; the example contrasts TCN
// with per-queue ECN/RED at the standard threshold.
//
// Run with: go run ./examples/isolation [-flows N] [-load L]
package main

import (
	"flag"
	"fmt"

	"tcn/internal/experiments"
)

func main() {
	flows := flag.Int("flows", 1200, "number of flows per scheme")
	load := flag.Float64("load", 0.9, "offered load on the client link")
	seed := flag.Int64("seed", 1, "random seed (same seed = same arrivals for both schemes)")
	flag.Parse()

	fmt.Printf("web-search workload, DWRR ×4 queues, DCTCP, load %.0f%%, %d flows\n\n",
		*load*100, *flows)

	var results []experiments.TestbedFCTResult
	for _, s := range []experiments.Scheme{experiments.SchemeTCN, experiments.SchemeMQECN, experiments.SchemeRED} {
		r := experiments.RunTestbedFCT(experiments.TestbedFCTConfig{
			Scheme: s,
			Sched:  experiments.SchedDWRR,
			Load:   *load,
			Flows:  *flows,
			Seed:   *seed,
		})
		results = append(results, r)
		fmt.Printf("%-8s avg(all)=%-10v avg(small)=%-10v p99(small)=%-10v avg(large)=%-10v drops=%d\n",
			s, r.Stats.AvgAll, r.Stats.AvgSmall, r.Stats.P99Small, r.Stats.AvgLarge, r.Drops)
	}

	tcn, red := results[0].Stats, results[2].Stats
	fmt.Printf("\nTCN vs per-queue RED: %.1f%% lower avg small-flow FCT, %.1f%% lower p99\n",
		100*(1-float64(tcn.AvgSmall)/float64(red.AvgSmall)),
		100*(1-float64(tcn.P99Small)/float64(red.P99Small)))
	fmt.Println("(the paper reports up to 61.4% / 73.3% at 90% load with 5000 flows)")
}
