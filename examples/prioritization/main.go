// Prioritization: a miniature of the paper's traffic-prioritization
// experiment (§6.1.3, Figures 8-9): SP/DWRR with a strict high-priority
// queue fed by two-priority PIAS tagging (first 100 KB of every flow).
// Small flows finish entirely at high priority, yet the ECN scheme still
// matters because high-priority packets die under low-priority buffer
// pressure in the shared pool.
//
// Run with: go run ./examples/prioritization [-flows N] [-load L]
package main

import (
	"flag"
	"fmt"

	"tcn/internal/experiments"
)

func main() {
	flows := flag.Int("flows", 1200, "number of flows per scheme")
	load := flag.Float64("load", 0.9, "offered load on the client link")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	fmt.Printf("web-search workload, SP(1)+DWRR(4), PIAS 100KB, DCTCP, load %.0f%%\n\n", *load*100)

	type row struct {
		name string
		res  experiments.TestbedFCTResult
	}
	var rows []row
	for _, s := range []experiments.Scheme{experiments.SchemeTCN, experiments.SchemeCoDel, experiments.SchemeRED} {
		r := experiments.RunTestbedFCT(experiments.TestbedFCTConfig{
			Scheme: s,
			Sched:  experiments.SchedSPDWRR,
			PIAS:   true,
			Load:   *load,
			Flows:  *flows,
			Seed:   *seed,
		})
		rows = append(rows, row{string(s), r})
		fmt.Printf("%-8s avg(small)=%-10v p99(small)=%-10v avg(large)=%-10v timeouts(small)=%d\n",
			s, r.Stats.AvgSmall, r.Stats.P99Small, r.Stats.AvgLarge, r.Stats.TimeoutsSmall)
	}

	// And the same TCN run without PIAS for the §6.1.3 comparison.
	iso := experiments.RunTestbedFCT(experiments.TestbedFCTConfig{
		Scheme: experiments.SchemeTCN,
		Sched:  experiments.SchedDWRR,
		Load:   *load,
		Flows:  *flows,
		Seed:   *seed,
	})
	withPIAS := rows[0].res.Stats.AvgSmall
	fmt.Printf("\nPIAS cuts TCN's small-flow average from %v to %v (%.1f%%); the paper reports 71.3%% at 90%% load\n",
		iso.Stats.AvgSmall, withPIAS,
		100*(1-float64(withPIAS)/float64(iso.Stats.AvgSmall)))
}
