// DCQCN: the paper's §4.3 extension, executable. Four DCQCN (RoCE-style,
// rate-based) senders share a 10 Gbps bottleneck; compare plain cut-off
// TCN against the RED-like probabilistic variant. Cut-off marking sends
// every sender a CNP in the same sojourn excursion, so they all cut
// together and the link goes idle between excursions; probabilistic
// marking staggers the notifications.
//
// Run with: go run ./examples/dcqcn [-senders N] [-dur 500ms]
package main

import (
	"flag"
	"fmt"
	"time"

	"tcn/internal/core"
	"tcn/internal/dcqcn"
	"tcn/internal/fabric"
	"tcn/internal/metrics"
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

func main() {
	senders := flag.Int("senders", 4, "DCQCN senders sharing the bottleneck")
	dur := flag.Duration("dur", 500*time.Millisecond, "simulated duration (after 150ms warmup)")
	flag.Parse()

	run := func(name string, marker func(rng *sim.Rand) core.Marker) {
		eng := sim.NewEngine()
		rng := sim.NewRand(1)
		net := fabric.NewStar(eng, fabric.StarConfig{
			Hosts:     *senders + 1,
			Rate:      10 * fabric.Gbps,
			Prop:      sim.Microsecond,
			HostDelay: 5 * sim.Microsecond,
			SwitchPort: func() fabric.PortConfig {
				// Unbounded buffer: RoCE fabrics are lossless (PFC).
				return fabric.PortConfig{Queues: 1, Marker: marker(rng)}
			},
		})
		st := dcqcn.NewStack(eng, dcqcn.Config{}, net.Hosts)

		warmup := 150 * sim.Millisecond
		measure := sim.Time(dur.Nanoseconds())
		per := map[pkt.FlowID]float64{}
		st.OnDeliver = func(now sim.Time, f pkt.FlowID, n int) {
			if now >= warmup {
				per[f] += float64(n)
			}
		}
		for src := 0; src < *senders; src++ {
			st.Start(src, *senders, 0)
		}
		eng.RunUntil(warmup + measure)

		sum, _ := metrics.SumAndSumSq(per)
		jain := metrics.JainFairness(per, *senders)
		fmt.Printf("%-9s aggregate %.2f Gbps  Jain %.3f  per-sender:", name, sum*8/measure.Seconds()/1e9, jain)
		for f := pkt.FlowID(0); int(f) < *senders; f++ {
			fmt.Printf(" %.2f", per[f]*8/measure.Seconds()/1e9)
		}
		fmt.Println(" Gbps")
	}

	fmt.Printf("%d DCQCN senders, 10 Gbps bottleneck, lossless fabric\n\n", *senders)
	run("cut-off", func(*sim.Rand) core.Marker {
		return core.NewTCN(300 * sim.Microsecond)
	})
	run("RED-like", func(rng *sim.Rand) core.Marker {
		return core.NewProbTCN(30*sim.Microsecond, 300*sim.Microsecond, 0.01, rng)
	})
	fmt.Println("\nthe cut-off marker synchronizes every sender's rate cut; the")
	fmt.Println("probabilistic ramp staggers CNPs and recovers the idle capacity.")
}
